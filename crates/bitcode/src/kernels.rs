//! HA-Kern — the distance-kernel layer behind every frozen-snapshot
//! search path.
//!
//! [`masked_distance_many`](crate::masked_distance_many) (the original
//! scalar SoA sweep) treats one sibling group as `2 · words · group`
//! contiguous words and pays one branchy scalar XOR/popcount step per
//! sibling per word-plane. That shape is already memory-friendly, but it
//! leaves throughput on the table in two opposite regimes:
//!
//! * **Wide groups, narrow codes** (clustered 64-bit data): the sweep is
//!   popcount-throughput-bound and the per-sibling `a <= limit` branch
//!   plus the load→xor→popcount→add dependency chain serialize it. The
//!   *lane-chunked* kernels process siblings in fixed-size lanes with the
//!   branch hoisted to lane granularity, so the compiler can keep several
//!   popcounts in flight.
//! * **Narrow groups, wide codes** (sparse 512-bit data): most siblings
//!   die on their first word or two, and the SoA plane order forces the
//!   kernel to come back to every sibling once per word-plane anyway. A
//!   *row-major* (AoS) group layout — each sibling's `bits` row then
//!   `mask` row, contiguous — lets the kernel finish one sibling with a
//!   single early-exiting streak, exactly like the arena's
//!   `MaskedCode::distance_to`, but over contiguous memory.
//!
//! Both layouts occupy the **same** `2 · words · group` words per group,
//! so a snapshot can choose per group (the adaptive freeze policy in
//! `ha-core`) without disturbing any base-offset arithmetic; the choice
//! travels as one byte per group ([`GroupLayout`]).
//!
//! [`masked_distance_group`] is the single dispatch point: a [`Kernel`]
//! (runtime choice) × [`GroupLayout`] (per-group data) pair selects the
//! implementation. With the `simd` crate feature (nightly only — it
//! enables `portable_simd`), [`Kernel::Simd`] runs `std::simd` variants;
//! without it, `Simd` degrades to the lane-chunked kernels so callers can
//! name `Kernel::Simd` unconditionally.
//!
//! # Contract (all kernels)
//!
//! Identical to `masked_distance_many`: `acc[s]` carries sibling `s`'s
//! accumulated parent-path distance on entry. On exit, `acc[s] <= limit`
//! implies `acc[s]` is the exact accumulated distance including sibling
//! `s`'s own pattern; `acc[s] > limit` means pruned, and the value may be
//! partial — kernels are free to stop work on a sibling, a lane, or the
//! whole group once everything in it is over budget. With
//! `limit == u32::MAX` nothing can be pruned, so every kernel returns
//! bit-exact distances (the property the trace renderer relies on).

/// Physical order of one sibling group's pattern words.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GroupLayout {
    /// Structure-of-arrays word-planes: all siblings' bits word 0, all
    /// siblings' mask word 0, then word 1, … (the original HA-Flat
    /// layout; best for wide groups of narrow codes).
    Soa,
    /// Row-major: sibling 0's bits words then mask words, sibling 1's,
    /// … (best for small groups of wide codes, where per-sibling early
    /// exit beats plane sweeping and transposition buys nothing).
    Aos,
}

impl GroupLayout {
    /// Both layouts, in dispatch order.
    pub const ALL: [GroupLayout; 2] = [GroupLayout::Soa, GroupLayout::Aos];

    /// Wire encoding of the layout flag (one byte per group in the
    /// HA-Store v2 format): `Soa` = 0, `Aos` = 1.
    pub fn flag(self) -> u8 {
        match self {
            GroupLayout::Soa => 0,
            GroupLayout::Aos => 1,
        }
    }

    /// Decodes a wire flag; any nonzero byte reads as `Aos` (the store
    /// validator rejects flags outside {0, 1} before search ever runs).
    pub fn from_flag(flag: u8) -> GroupLayout {
        if flag == 0 {
            GroupLayout::Soa
        } else {
            GroupLayout::Aos
        }
    }

    /// Stable lower-case name used in benches and tables.
    pub fn name(self) -> &'static str {
        match self {
            GroupLayout::Soa => "soa",
            GroupLayout::Aos => "aos",
        }
    }
}

/// Which kernel implementation services a group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// The reference kernels: branchy per-sibling scalar loops. SoA
    /// scalar *is* [`crate::masked_distance_many`].
    Scalar,
    /// Stable-Rust lane-chunked kernels: siblings processed in lanes of
    /// [`LANES`] (SoA) / words in unrolled blocks of 4 (AoS), liveness
    /// checked per lane, popcounts unrolled so they pipeline.
    Lanes,
    /// `std::simd` portable-SIMD kernels, compiled only with the `simd`
    /// crate feature (nightly). Without the feature this variant is
    /// still nameable and dispatches to [`Kernel::Lanes`].
    Simd,
}

impl Kernel {
    /// Every kernel, in ascending sophistication — the bench/test matrix.
    pub const ALL: [Kernel; 3] = [Kernel::Scalar, Kernel::Lanes, Kernel::Simd];

    /// The best kernel this build can run: `Simd` when the `simd`
    /// feature is compiled in, `Lanes` otherwise.
    pub fn auto() -> Kernel {
        if cfg!(feature = "simd") {
            Kernel::Simd
        } else {
            Kernel::Lanes
        }
    }

    /// The best kernel for the CPU this process is *running on*, probed
    /// once and cached: [`Kernel::auto`] when the hardware popcount the
    /// lane-chunked kernels lean on is actually present, the branchy
    /// scalar reference otherwise. Compile-time selection
    /// ([`Kernel::auto`]) answers "what did we build?"; this answers
    /// "what should this process run?" — the distinction matters for
    /// portable binaries built without `-C target-cpu=native`.
    ///
    /// Every kernel computes identical distances, so the choice is pure
    /// performance: callers (freeze, serve) may cache or override it
    /// freely without affecting results.
    pub fn detect() -> Kernel {
        static DETECTED: std::sync::OnceLock<Kernel> = std::sync::OnceLock::new();
        *DETECTED.get_or_init(|| {
            #[cfg(target_arch = "x86_64")]
            {
                // Without POPCNT the unrolled `count_ones` chains in the
                // lane kernels lower to the slow bit-twiddling expansion;
                // the short-circuiting scalar loop wins there.
                if !std::arch::is_x86_feature_detected!("popcnt") {
                    return Kernel::Scalar;
                }
            }
            Kernel::auto()
        })
    }

    /// False only for `Simd` in builds without the `simd` feature, where
    /// dispatch substitutes the lane-chunked kernels.
    pub fn is_native(self) -> bool {
        match self {
            Kernel::Simd => cfg!(feature = "simd"),
            _ => true,
        }
    }

    /// Stable lower-case name used in benches and tables.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Lanes => "lanes",
            Kernel::Simd => "simd",
        }
    }
}

/// Sibling-lane width of the lane-chunked SoA kernel (and the
/// portable-SIMD vector width): 8 × u64 = one 64-byte cache line of
/// plane data per step.
pub const LANES: usize = 8;

/// Words per unrolled block of the lane-chunked AoS kernel.
const AOS_UNROLL: usize = 4;

#[inline(always)]
fn pop(q: u64, bits: u64, mask: u64) -> u32 {
    ((q ^ bits) & mask).count_ones()
}

/// Batch masked-distance over one sibling group — the single dispatch
/// point of HA-Kern (see module docs for the contract).
///
/// `planes` holds the group's `2 * query.len() * group` pattern words in
/// `layout` order; `kernel` picks the implementation at runtime.
///
/// # Panics
/// If `planes.len() != 2 * query.len() * group`. `acc.len() == group` is
/// debug-asserted at this boundary; in release builds a short `acc` can
/// only truncate the sweep or panic on an interior bounds check.
pub fn masked_distance_group(
    kernel: Kernel,
    layout: GroupLayout,
    query: &[u64],
    planes: &[u64],
    group: usize,
    limit: u32,
    acc: &mut [u32],
) {
    assert_eq!(
        planes.len(),
        2 * query.len() * group,
        "planes must hold bits+mask words for every sibling"
    );
    debug_assert_eq!(acc.len(), group, "one accumulator per sibling");
    if group == 0 || query.is_empty() {
        return;
    }
    match (kernel, layout) {
        (Kernel::Scalar, GroupLayout::Soa) => {
            crate::words::masked_distance_many(query, planes, group, limit, acc)
        }
        (Kernel::Scalar, GroupLayout::Aos) => aos_scalar(query, planes, limit, acc),
        (Kernel::Lanes, GroupLayout::Soa) => soa_lanes(query, planes, group, limit, acc),
        (Kernel::Lanes, GroupLayout::Aos) => aos_lanes(query, planes, limit, acc),
        #[cfg(feature = "simd")]
        (Kernel::Simd, GroupLayout::Soa) => simd_impl::soa(query, planes, group, limit, acc),
        #[cfg(feature = "simd")]
        (Kernel::Simd, GroupLayout::Aos) => simd_impl::aos(query, planes, limit, acc),
        #[cfg(not(feature = "simd"))]
        (Kernel::Simd, GroupLayout::Soa) => soa_lanes(query, planes, group, limit, acc),
        #[cfg(not(feature = "simd"))]
        (Kernel::Simd, GroupLayout::Aos) => aos_lanes(query, planes, limit, acc),
    }
}

/// Lane-chunked SoA sweep: per word-plane, siblings go by in lanes of
/// [`LANES`]; a lane whose accumulators are all over budget is skipped
/// whole (the scalar kernel's per-sibling branch, at 1/8 the frequency),
/// a live lane runs branch-free with its popcounts unrolled. Group-level
/// bail-out is unchanged: once a plane ends with nobody within budget,
/// the remaining planes are skipped.
fn soa_lanes(query: &[u64], planes: &[u64], group: usize, limit: u32, acc: &mut [u32]) {
    // Single word-plane (64-bit codes): there is no next plane to bail
    // out of, so liveness tracking buys nothing — run one branch-free
    // pass. Dead-on-entry accumulators only grow (saturating), so they
    // stay over budget, and live ones get their exact distance.
    if let [q] = query {
        let (bits, mask) = planes.split_at(group);
        for (a, (&b, &m)) in acc.iter_mut().zip(bits.iter().zip(mask)) {
            *a = a.saturating_add(pop(*q, b, m));
        }
        return;
    }
    let full = group - group % LANES;
    for (plane, &q) in planes.chunks_exact(2 * group).zip(query) {
        let (bits, mask) = plane.split_at(group);
        let mut live = false;
        for ((b, m), a) in bits[..full]
            .chunks_exact(LANES)
            .zip(mask[..full].chunks_exact(LANES))
            .zip(acc[..full].chunks_exact_mut(LANES))
        {
            if a.iter().all(|&x| x > limit) {
                continue;
            }
            for i in 0..LANES {
                let d = a[i].saturating_add(pop(q, b[i], m[i]));
                a[i] = d;
                live |= d <= limit;
            }
        }
        for s in full..group {
            let a = acc[s];
            if a <= limit {
                let d = a + pop(q, bits[s], mask[s]);
                acc[s] = d;
                live |= d <= limit;
            }
        }
        if !live {
            return;
        }
    }
}

/// Scalar AoS sweep: one early-exiting streak per sibling over its
/// contiguous `[bits…, mask…]` row — the arena's per-child distance
/// loop, minus the pointer chase.
fn aos_scalar(query: &[u64], planes: &[u64], limit: u32, acc: &mut [u32]) {
    let w = query.len();
    for (a, row) in acc.iter_mut().zip(planes.chunks_exact(2 * w)) {
        if *a > limit {
            continue;
        }
        let (bits, mask) = row.split_at(w);
        let mut d = *a;
        for i in 0..w {
            d += pop(query[i], bits[i], mask[i]);
            if d > limit {
                break;
            }
        }
        *a = d;
    }
}

/// Lane-chunked AoS sweep: like [`aos_scalar`], but each sibling's row
/// is consumed in unrolled blocks of [`AOS_UNROLL`] words with the
/// budget check once per block, so the popcounts pipeline.
fn aos_lanes(query: &[u64], planes: &[u64], limit: u32, acc: &mut [u32]) {
    let w = query.len();
    for (a, row) in acc.iter_mut().zip(planes.chunks_exact(2 * w)) {
        if *a > limit {
            continue;
        }
        let (bits, mask) = row.split_at(w);
        let mut d = *a;
        let mut i = 0;
        while i + AOS_UNROLL <= w {
            let block = pop(query[i], bits[i], mask[i])
                + pop(query[i + 1], bits[i + 1], mask[i + 1])
                + pop(query[i + 2], bits[i + 2], mask[i + 2])
                + pop(query[i + 3], bits[i + 3], mask[i + 3]);
            d = d.saturating_add(block);
            if d > limit {
                break;
            }
            i += AOS_UNROLL;
        }
        while i < w && d <= limit {
            d = d.saturating_add(pop(query[i], bits[i], mask[i]));
            i += 1;
        }
        *a = d;
    }
}

#[cfg(feature = "simd")]
mod simd_impl {
    //! `std::simd` variants (nightly, behind the `simd` feature). Same
    //! contract, same lane shapes as the stable kernels: SoA runs 8
    //! siblings per vector, AoS runs 4 words per vector per sibling.

    use std::simd::cmp::SimdPartialOrd;
    use std::simd::num::SimdUint;
    use std::simd::{u32x8, u64x4, u64x8};

    use super::{pop, LANES};

    pub(super) fn soa(query: &[u64], planes: &[u64], group: usize, limit: u32, acc: &mut [u32]) {
        let full = group - group % LANES;
        let lim = u32x8::splat(limit);
        // Single word-plane: no next plane to bail out of — one
        // branch-free vector pass (see the lane-chunked kernel).
        if let [q] = query {
            let (bits, mask) = planes.split_at(group);
            let qv = u64x8::splat(*q);
            for ((b, m), a) in bits[..full]
                .chunks_exact(LANES)
                .zip(mask[..full].chunks_exact(LANES))
                .zip(acc[..full].chunks_exact_mut(LANES))
            {
                let bv = u64x8::from_slice(b);
                let mv = u64x8::from_slice(m);
                let counts: u32x8 = ((qv ^ bv) & mv).count_ones().cast();
                u32x8::from_slice(a).saturating_add(counts).copy_to_slice(a);
            }
            for s in full..group {
                acc[s] = acc[s].saturating_add(pop(*q, bits[s], mask[s]));
            }
            return;
        }
        for (plane, &q) in planes.chunks_exact(2 * group).zip(query) {
            let (bits, mask) = plane.split_at(group);
            let qv = u64x8::splat(q);
            let mut live = false;
            for ((b, m), a) in bits[..full]
                .chunks_exact(LANES)
                .zip(mask[..full].chunks_exact(LANES))
                .zip(acc[..full].chunks_exact_mut(LANES))
            {
                let av = u32x8::from_slice(a);
                if av.simd_gt(lim).all() {
                    continue;
                }
                let bv = u64x8::from_slice(b);
                let mv = u64x8::from_slice(m);
                let counts: u32x8 = ((qv ^ bv) & mv).count_ones().cast();
                let dv = av.saturating_add(counts);
                dv.copy_to_slice(a);
                live |= dv.simd_le(lim).any();
            }
            for s in full..group {
                let a = acc[s];
                if a <= limit {
                    let d = a + pop(q, bits[s], mask[s]);
                    acc[s] = d;
                    live |= d <= limit;
                }
            }
            if !live {
                return;
            }
        }
    }

    pub(super) fn aos(query: &[u64], planes: &[u64], limit: u32, acc: &mut [u32]) {
        let w = query.len();
        let lim = u64::from(limit);
        for (a, row) in acc.iter_mut().zip(planes.chunks_exact(2 * w)) {
            if *a > limit {
                continue;
            }
            let (bits, mask) = row.split_at(w);
            let mut d = u64::from(*a);
            let mut i = 0;
            while i + 4 <= w {
                let qv = u64x4::from_slice(&query[i..i + 4]);
                let bv = u64x4::from_slice(&bits[i..i + 4]);
                let mv = u64x4::from_slice(&mask[i..i + 4]);
                d += ((qv ^ bv) & mv).count_ones().reduce_sum();
                if d > lim {
                    break;
                }
                i += 4;
            }
            while i < w && d <= lim {
                d += u64::from(pop(query[i], bits[i], mask[i]));
                i += 1;
            }
            *a = d.min(u64::from(u32::MAX)) as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random words (splitmix-style mixer).
    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Packs per-sibling (bits, mask) rows into `layout` order.
    fn pack(group: &[(Vec<u64>, Vec<u64>)], layout: GroupLayout) -> Vec<u64> {
        let words = group.first().map_or(0, |(b, _)| b.len());
        let mut planes = Vec::new();
        match layout {
            GroupLayout::Soa => {
                for w in 0..words {
                    for (bits, _) in group {
                        planes.push(bits[w]);
                    }
                    for (_, mask) in group {
                        planes.push(mask[w]);
                    }
                }
            }
            GroupLayout::Aos => {
                for (bits, mask) in group {
                    planes.extend_from_slice(bits);
                    planes.extend_from_slice(mask);
                }
            }
        }
        planes
    }

    fn naive(query: &[u64], bits: &[u64], mask: &[u64]) -> u32 {
        query
            .iter()
            .zip(bits)
            .zip(mask)
            .map(|((q, b), m)| ((q ^ b) & m).count_ones())
            .sum()
    }

    #[test]
    fn every_kernel_and_layout_matches_naive() {
        let mut next = rng(0x1234_5678);
        for words in [1usize, 2, 4, 8, 16] {
            for group in [1usize, 2, 7, 8, 9, 33] {
                let query: Vec<u64> = (0..words).map(|_| next()).collect();
                let sibs: Vec<(Vec<u64>, Vec<u64>)> = (0..group)
                    .map(|_| {
                        (
                            (0..words).map(|_| next()).collect(),
                            (0..words).map(|_| next()).collect(),
                        )
                    })
                    .collect();
                for layout in GroupLayout::ALL {
                    let planes = pack(&sibs, layout);
                    for kernel in Kernel::ALL {
                        for limit in [0u32, 3, 17, 64, u32::MAX] {
                            for init in [0u32, 2] {
                                let mut acc = vec![init; group];
                                masked_distance_group(
                                    kernel, layout, &query, &planes, group, limit, &mut acc,
                                );
                                for (s, (bits, mask)) in sibs.iter().enumerate() {
                                    let exact = init + naive(&query, bits, mask);
                                    if exact <= limit {
                                        assert_eq!(
                                            acc[s],
                                            exact,
                                            "kernel={} layout={} words={words} group={group} \
                                             limit={limit} sibling={s}",
                                            kernel.name(),
                                            layout.name()
                                        );
                                    } else {
                                        assert!(
                                            acc[s] > limit,
                                            "pruned sibling must stay over budget \
                                             (kernel={} layout={})",
                                            kernel.name(),
                                            layout.name()
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn unlimited_budget_is_bit_exact_everywhere() {
        // limit == u32::MAX disables pruning: every kernel × layout must
        // agree exactly, which is what the trace renderer relies on.
        let mut next = rng(99);
        let words = 8;
        let group = 13;
        let query: Vec<u64> = (0..words).map(|_| next()).collect();
        let sibs: Vec<(Vec<u64>, Vec<u64>)> = (0..group)
            .map(|_| {
                (
                    (0..words).map(|_| next()).collect(),
                    (0..words).map(|_| next()).collect(),
                )
            })
            .collect();
        let expect: Vec<u32> = sibs.iter().map(|(b, m)| naive(&query, b, m)).collect();
        for layout in GroupLayout::ALL {
            let planes = pack(&sibs, layout);
            for kernel in Kernel::ALL {
                let mut acc = vec![0u32; group];
                masked_distance_group(kernel, layout, &query, &planes, group, u32::MAX, &mut acc);
                assert_eq!(acc, expect, "kernel={} layout={}", kernel.name(), layout.name());
            }
        }
    }

    #[test]
    fn dead_on_entry_siblings_stay_dead() {
        // An accumulator already over budget must never come back under
        // it, even at the saturation boundary.
        let query = [u64::MAX];
        let planes_soa = [0u64, u64::MAX]; // bits=0, mask=all → popcount 64
        let planes_aos = [0u64, u64::MAX];
        for kernel in Kernel::ALL {
            let mut acc = [u32::MAX];
            masked_distance_group(kernel, GroupLayout::Soa, &query, &planes_soa, 1, 5, &mut acc);
            assert!(acc[0] > 5, "kernel={}", kernel.name());
            let mut acc = [u32::MAX];
            masked_distance_group(kernel, GroupLayout::Aos, &query, &planes_aos, 1, 5, &mut acc);
            assert!(acc[0] > 5, "kernel={}", kernel.name());
        }
    }

    #[test]
    fn degenerate_shapes_do_not_panic() {
        for kernel in Kernel::ALL {
            for layout in GroupLayout::ALL {
                masked_distance_group(kernel, layout, &[0u64; 2], &[], 0, 5, &mut []);
                masked_distance_group(kernel, layout, &[], &[], 3, 5, &mut [0, 1, 2]);
            }
        }
    }

    #[test]
    fn auto_kernel_is_native() {
        assert!(Kernel::auto().is_native());
        assert_eq!(Kernel::Simd.is_native(), cfg!(feature = "simd"));
        assert_eq!(GroupLayout::from_flag(0), GroupLayout::Soa);
        assert_eq!(GroupLayout::from_flag(1), GroupLayout::Aos);
        assert_eq!(GroupLayout::Aos.flag(), 1);
    }

    #[test]
    fn detected_kernel_is_native_and_stable() {
        // Whatever the probe picks must be runnable in this build, and
        // the OnceLock cache must make repeated probes free and equal.
        let k = Kernel::detect();
        assert!(k.is_native());
        assert_eq!(Kernel::detect(), k);
        // On any host modern enough to run the test suite the probe
        // finds popcount and agrees with the compile-time choice; the
        // scalar fallback is for genuinely pre-SSE4.2 silicon.
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("popcnt") {
            assert_eq!(k, Kernel::auto());
        }
    }
}
