//! Chunked-probe kernels for Multi-Index Hashing (Norouzi et al.).
//!
//! MIH splits a code into `m` chunks and keeps one hash table per chunk.
//! A query with threshold `h = m·r + a` (`0 <= a < m`) probes chunks
//! `0..=a` with radius `r` and the remaining chunks with radius `r − 1`:
//! by the generalized pigeonhole principle, if every leading chunk
//! differed by more than `r` and every trailing chunk by more than
//! `r − 1`, the total distance would be at least
//! `(a+1)(r+1) + (m−a−1)r = h + 1`. Probing a chunk with radius `ρ`
//! means enumerating **every value within Hamming distance ρ** of the
//! query's chunk value and looking each one up — the kernels here supply
//! that enumeration and its exact cost, so the index layer can cap the
//! probe budget and fall back to a linear scan before the enumeration
//! turns combinatorial.

/// Number of values within Hamming distance `radius` of a `width`-bit
/// value: `Σ_{i<=min(radius,width)} C(width, i)`, saturating at
/// `u64::MAX`. This is the exact number of callbacks
/// [`for_each_neighbor`] issues, and the probe-cost term of the MIH cost
/// model.
pub fn neighborhood_size(width: u32, radius: u32) -> u64 {
    let r = radius.min(width);
    let mut total: u64 = 0;
    let mut c: u64 = 1; // C(width, 0)
    for i in 1..=r + 1 {
        total = total.saturating_add(c);
        if i > r {
            break;
        }
        // C(width, i) = C(width, i−1) · (width − i + 1) / i — the
        // division is exact at every step.
        c = match c.checked_mul(u64::from(width - i + 1)) {
            Some(x) => x / u64::from(i),
            None => return u64::MAX,
        };
    }
    total
}

/// Invokes `f` once for every `width`-bit value within Hamming distance
/// `radius` of `value` (including `value` itself), each exactly once.
/// Enumeration order flips bit subsets in ascending-position order, so it
/// is deterministic. The value occupies the low `width` bits, matching
/// [`crate::segment::Segmentation::extract`].
///
/// # Panics
/// If `width` exceeds 64.
pub fn for_each_neighbor(value: u64, width: u32, radius: u32, f: &mut impl FnMut(u64)) {
    assert!(width <= 64, "chunk values must fit a u64");
    fn rec(value: u64, width: u32, radius: u32, from: u32, f: &mut impl FnMut(u64)) {
        f(value);
        if radius == 0 {
            return;
        }
        for b in from..width {
            rec(value ^ (1u64 << b), width, radius - 1, b + 1, f);
        }
    }
    rec(value, width, radius.min(width), 0, f);
}

/// Early-exit Hamming distance between two equal-length word slices:
/// `Some(d)` when `d <= limit`, `None` as soon as the running popcount
/// exceeds `limit`. This is the full-distance verification kernel MIH
/// runs over its flat row storage (same stride layout as
/// [`crate::BinaryCode::words`]).
///
/// # Panics
/// If the slices differ in length.
pub fn distance_within_words(a: &[u64], b: &[u64], limit: u32) -> Option<u32> {
    assert_eq!(a.len(), b.len(), "word slices must have equal length");
    let mut acc = 0u32;
    for (x, y) in a.iter().zip(b) {
        acc += (x ^ y).count_ones();
        if acc > limit {
            return None;
        }
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn brute_size(width: u32, radius: u32) -> u64 {
        (0u64..1 << width)
            .filter(|v| v.count_ones() <= radius)
            .count() as u64
    }

    #[test]
    fn neighborhood_size_matches_brute_force() {
        for width in 0..=12u32 {
            for radius in 0..=width + 2 {
                assert_eq!(
                    neighborhood_size(width, radius),
                    brute_size(width, radius),
                    "width={width} radius={radius}"
                );
            }
        }
    }

    #[test]
    fn neighborhood_size_saturates_instead_of_overflowing() {
        assert_eq!(neighborhood_size(64, 64), u64::MAX);
        assert_eq!(neighborhood_size(64, 0), 1);
        assert_eq!(neighborhood_size(64, 1), 65);
        // C(64, 32) alone exceeds u64? No — but the running sum of all
        // C(64, i) is 2^64, which does: the sum must clamp.
        assert_eq!(neighborhood_size(64, 63), u64::MAX);
    }

    #[test]
    fn enumeration_is_exact_distinct_and_within_radius() {
        for (value, width, radius) in
            [(0b1010u64, 4u32, 2u32), (0, 7, 3), (0x5F, 8, 8), (1, 1, 1), (0, 3, 0)]
        {
            let mut seen = Vec::new();
            for_each_neighbor(value, width, radius, &mut |v| seen.push(v));
            assert_eq!(
                seen.len() as u64,
                neighborhood_size(width, radius),
                "count for value={value} width={width} radius={radius}"
            );
            let distinct: HashSet<u64> = seen.iter().copied().collect();
            assert_eq!(distinct.len(), seen.len(), "no duplicates");
            for v in &seen {
                assert!((v ^ value).count_ones() <= radius, "{v:#x} out of radius");
                assert_eq!(v >> width.min(63), if width == 64 { v >> 63 } else { 0 });
            }
            // Completeness: every in-radius value appears.
            if width <= 10 {
                for v in 0u64..1 << width {
                    assert_eq!(
                        distinct.contains(&v),
                        (v ^ value).count_ones() <= radius,
                        "membership of {v:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn distance_within_words_early_exit_and_exact() {
        let a = [0xFFFF_0000_FFFF_0000u64, 0x1234_5678_9ABC_DEF0];
        let b = [0xFFFF_0000_FFFF_000Fu64, 0x1234_5678_9ABC_DEF0];
        assert_eq!(distance_within_words(&a, &b, 4), Some(4));
        assert_eq!(distance_within_words(&a, &b, 3), None);
        assert_eq!(distance_within_words(&a, &a, 0), Some(0));
        assert_eq!(distance_within_words(&[], &[], 0), Some(0));
    }
}
