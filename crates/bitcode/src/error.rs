use std::fmt;

/// Errors produced when constructing or combining bit codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitCodeError {
    /// A code longer than [`crate::MAX_BITS`] was requested.
    TooLong {
        /// Requested length in bits.
        requested: usize,
    },
    /// A zero-length code was requested where one is not meaningful.
    Empty,
    /// A string contained a character that is not `0`, `1`, or a
    /// don't-care marker (`.` or `·`).
    BadChar {
        /// Offending character.
        ch: char,
        /// Byte offset in the input.
        at: usize,
    },
    /// Two codes of different lengths were combined.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
}

impl fmt::Display for BitCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitCodeError::TooLong { requested } => {
                write!(
                    f,
                    "code length {requested} exceeds maximum of {} bits",
                    crate::MAX_BITS
                )
            }
            BitCodeError::Empty => write!(f, "zero-length binary code"),
            BitCodeError::BadChar { ch, at } => {
                write!(f, "invalid character {ch:?} at offset {at} (expected 0, 1, '.' or '·')")
            }
            BitCodeError::LengthMismatch { left, right } => {
                write!(f, "code length mismatch: {left} vs {right} bits")
            }
        }
    }
}

impl std::error::Error for BitCodeError {}
