//! [`MaskedCode`] — bit patterns with don't-care positions.
//!
//! A masked code is the paper's FLSS / FLSSeq: a pattern such as
//! `"···0·010"` that a whole group of binary codes has in common. The mask
//! selects the *cared* positions; `bits` holds their values (and is zero on
//! every don't-care position, keeping the representation canonical).
//!
//! Two facts make these patterns useful as index-node labels:
//!
//! 1. **Downward closure** (Proposition 1): for any code `U` matching the
//!    pattern `P` and any query `q`, `hamming(q, U) >= masked_distance(q, P)`.
//!    If the masked distance already exceeds the threshold, every code under
//!    the pattern can be discarded.
//! 2. **Disjoint decomposition**: the Dynamic HA-Index stores, along each
//!    root-to-leaf path, patterns with pairwise disjoint masks whose union
//!    covers all bit positions — so the *sum* of masked distances along the
//!    path is the exact Hamming distance at the leaf.

use std::fmt;
use std::str::FromStr;

use crate::error::BitCodeError;
use crate::BinaryCode;

/// A binary pattern with don't-care positions (the unified FLSS/FLSSeq).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct MaskedCode {
    /// Pattern bits; always zero at don't-care positions (canonical form).
    bits: BinaryCode,
    /// Cared positions: 1 = this position participates in the pattern.
    mask: BinaryCode,
}

impl MaskedCode {
    /// A pattern that cares about every bit of `code` (mask = all ones).
    pub fn full(code: BinaryCode) -> Self {
        let mask = BinaryCode::ones(code.len());
        MaskedCode { bits: code, mask }
    }

    /// A pattern caring about nothing (mask = all zeros) of width `len`.
    pub fn empty(len: usize) -> Self {
        MaskedCode {
            bits: BinaryCode::zero(len),
            mask: BinaryCode::zero(len),
        }
    }

    /// Builds a pattern from explicit bits and mask. Bits outside the mask
    /// are cleared to keep equality/hashing canonical.
    pub fn new(bits: BinaryCode, mask: BinaryCode) -> Result<Self, BitCodeError> {
        if bits.len() != mask.len() {
            return Err(BitCodeError::LengthMismatch {
                left: bits.len(),
                right: mask.len(),
            });
        }
        Ok(MaskedCode {
            bits: bits.and(&mask),
            mask,
        })
    }

    /// Width of the pattern in bits.
    #[allow(clippy::len_without_is_empty)] // "empty" means empty *mask* here
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// The pattern's bit values (zero at don't-care positions).
    pub fn bits(&self) -> &BinaryCode {
        &self.bits
    }

    /// The cared-position mask.
    pub fn mask(&self) -> &BinaryCode {
        &self.mask
    }

    /// Number of cared positions.
    pub fn cared_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// True if the pattern cares about no position at all.
    pub fn is_vacuous(&self) -> bool {
        self.mask.is_zero()
    }

    /// True if `code` agrees with the pattern on every cared position.
    #[inline]
    pub fn matches(&self, code: &BinaryCode) -> bool {
        code.and(&self.mask) == self.bits
    }

    /// Hamming distance between the pattern and `query`, counted only on
    /// cared positions — a lower bound on `hamming(query, U)` for every `U`
    /// matching this pattern.
    #[inline]
    pub fn distance_to(&self, query: &BinaryCode) -> u32 {
        query.hamming_masked(&self.bits, &self.mask)
    }

    /// Like [`MaskedCode::distance_to`], but bails out with `None` as soon
    /// as the running distance exceeds `limit` — the scalar analogue of the
    /// word-plane batch kernel [`crate::masked_distance_many`].
    #[inline]
    pub fn distance_within(&self, query: &BinaryCode, limit: u32) -> Option<u32> {
        debug_assert_eq!(self.len(), query.len(), "pattern/query width mismatch");
        let mut acc = 0u32;
        for ((q, b), m) in query
            .words()
            .iter()
            .zip(self.bits.words())
            .zip(self.mask.words())
        {
            acc += ((q ^ b) & m).count_ones();
            if acc > limit {
                return None;
            }
        }
        Some(acc)
    }

    /// The pattern common to `self` and `other`: positions both care about
    /// *and* agree on. This is `extractFLSSeq` from Algorithm 1 generalized
    /// to patterns (plain codes are patterns with a full mask).
    pub fn common(&self, other: &MaskedCode) -> MaskedCode {
        let mut mask = self.mask.and(&other.mask);
        let disagree = self.bits.xor(&other.bits);
        mask.and_not_assign(&disagree);
        MaskedCode {
            bits: self.bits.and(&mask),
            mask,
        }
    }

    /// Folds [`MaskedCode::common`] over a group, returning the maximal
    /// pattern shared by all members (possibly vacuous). Returns `None` for
    /// an empty group.
    pub fn common_of<'a>(mut group: impl Iterator<Item = &'a MaskedCode>) -> Option<MaskedCode> {
        let first = group.next()?.clone();
        Some(group.fold(first, |acc, m| acc.common(m)))
    }

    /// Removes the positions of `parent` from this pattern — the residual a
    /// child node keeps after its parent absorbed the shared positions
    /// (H-Build line 5: "denotes the new binary code of the child node").
    pub fn subtract(&self, parent_mask: &BinaryCode) -> MaskedCode {
        let mut mask = self.mask.clone();
        mask.and_not_assign(parent_mask);
        MaskedCode {
            bits: self.bits.and(&mask),
            mask,
        }
    }

    /// Combines two patterns with disjoint masks into one covering both —
    /// the `combine(c.b, n.b)` step of H-Search (Algorithm 3, line 15).
    ///
    /// # Panics
    /// In debug builds, if the masks overlap (which would double-count
    /// distance contributions).
    pub fn combine(&self, other: &MaskedCode) -> MaskedCode {
        debug_assert!(
            self.mask.is_disjoint(&other.mask),
            "combine() requires disjoint masks"
        );
        MaskedCode {
            bits: self.bits.or(&other.bits),
            mask: self.mask.or(&other.mask),
        }
    }

    /// Heap bytes owned by the pattern.
    pub fn heap_bytes(&self) -> usize {
        self.bits.heap_bytes() + self.mask.heap_bytes()
    }

    /// Total bytes attributable to the pattern (struct + heap).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.bits.heap_bytes() + self.mask.heap_bytes()
    }
}

impl fmt::Display for MaskedCode {
    /// Renders the paper's notation: `0`/`1` on cared positions, `·` on
    /// don't-cares.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len() {
            if !self.mask.get(i) {
                f.write_str("·")?;
            } else if self.bits.get(i) {
                f.write_str("1")?;
            } else {
                f.write_str("0")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for MaskedCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MaskedCode({self})")
    }
}

impl FromStr for MaskedCode {
    type Err = BitCodeError;

    /// Parses the paper's pattern notation: `0`, `1`, and `.` or `·` for
    /// don't-care; spaces ignored.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut cells = Vec::with_capacity(s.len());
        for (at, ch) in s.char_indices() {
            match ch {
                '0' => cells.push(Some(false)),
                '1' => cells.push(Some(true)),
                '.' | '·' | '*' => cells.push(None),
                ' ' | '_' => {}
                ch => return Err(BitCodeError::BadChar { ch, at }),
            }
        }
        if cells.is_empty() {
            return Err(BitCodeError::Empty);
        }
        let mut bits = BinaryCode::try_zero(cells.len())?;
        let mut mask = BinaryCode::try_zero(cells.len())?;
        for (i, cell) in cells.iter().enumerate() {
            if let Some(b) = cell {
                mask.set(i, true);
                bits.set(i, *b);
            }
        }
        Ok(MaskedCode { bits, mask })
    }
}

impl From<BinaryCode> for MaskedCode {
    fn from(code: BinaryCode) -> Self {
        MaskedCode::full(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parse_display_roundtrip() {
        let p: MaskedCode = "···0·010".replace('·', ".").parse().unwrap();
        assert_eq!(p.to_string(), "···0·010");
        assert_eq!(p.cared_count(), 4);
    }

    #[test]
    fn paper_flsseq_example() {
        // §3: U = "···0·1·1·" is an FLSSeq of t0 = "001001010"? The paper's
        // definition-4 example uses t0="001001010" with pattern "···0·1·1·".
        let t0: BinaryCode = "001001010".parse().unwrap();
        let p: MaskedCode = "...0.1.1.".parse().unwrap();
        assert!(p.matches(&t0));
        // And the worked distance: query "001001010" vs that FLSSeq…
        // the paper computes distance on effective bit positions.
        let q: BinaryCode = "001001010".parse().unwrap();
        assert_eq!(p.distance_to(&q), 0);
    }

    #[test]
    fn paper_distance_on_effective_positions() {
        // §3 (after Def. 4): FLSSeq "···0·1·1·" vs query "001001010" has
        // Hamming distance 2 in the paper's example.
        let p: MaskedCode = "...0.1.1.".parse().unwrap();
        // The paper's stated query for this computation:
        let q: BinaryCode = "001101000".parse().unwrap();
        // positions (0-based) cared: 3,5,7 → q has 1,0,0 vs pattern 0,1,1 → 3?
        // The paper's prose example is internally loose; we simply verify
        // the definition: count of disagreements on cared positions.
        let manual = (0..9)
            .filter(|&i| p.mask().get(i) && (p.bits().get(i) != q.get(i)))
            .count() as u32;
        assert_eq!(p.distance_to(&q), manual);
    }

    #[test]
    fn matches_respects_only_cared_positions() {
        let p: MaskedCode = "1.0.".parse().unwrap();
        for s in ["1000", "1001", "1100", "1101"] {
            assert!(p.matches(&s.parse().unwrap()), "{s}");
        }
        for s in ["0000", "1010", "0101"] {
            assert!(!p.matches(&s.parse().unwrap()), "{s}");
        }
    }

    #[test]
    fn common_extracts_shared_flsseq() {
        // t0 = 001001010, t1 = 001011101 → shared pattern "0010·1···"
        // (positions where they agree).
        let t0 = MaskedCode::full("001001010".parse().unwrap());
        let t1 = MaskedCode::full("001011101".parse().unwrap());
        let c = t0.common(&t1);
        assert_eq!(c.to_string(), "0010·1···");
    }

    #[test]
    fn common_of_group_and_vacuous() {
        let a = MaskedCode::full("0000".parse().unwrap());
        let b = MaskedCode::full("1111".parse().unwrap());
        let c = a.common(&b);
        assert!(c.is_vacuous());
        assert!(MaskedCode::common_of(std::iter::empty()).is_none());
        let one = MaskedCode::common_of([a.clone()].iter()).unwrap();
        assert_eq!(one, a);
    }

    #[test]
    fn subtract_residual_is_disjoint_from_parent() {
        let child = MaskedCode::full("001001010".parse().unwrap());
        let parent: MaskedCode = "0010.1...".parse().unwrap();
        let residual = child.subtract(parent.mask());
        assert_eq!(residual.to_string(), "····0·010");
        assert!(residual.mask().is_disjoint(parent.mask()));
        // Parent + residual reconstruct the full code.
        let rebuilt = parent.combine(&residual);
        assert_eq!(rebuilt.bits(), &"001001010".parse::<BinaryCode>().unwrap());
        assert_eq!(rebuilt.mask(), &BinaryCode::ones(9));
    }

    #[test]
    fn downward_closure_lower_bound() {
        // For every code matching a pattern, the masked distance is a
        // lower bound of the true distance (Proposition 1).
        let p: MaskedCode = "10.1..0.".parse().unwrap();
        let q: BinaryCode = "01011010".parse().unwrap();
        let lb = p.distance_to(&q);
        // Enumerate all completions of the 4 don't-care bits.
        let dc: Vec<usize> = (0..8).filter(|&i| !p.mask().get(i)).collect();
        for fill in 0u32..(1 << dc.len()) {
            let mut c = p.bits().clone();
            for (j, &pos) in dc.iter().enumerate() {
                c.set(pos, (fill >> j) & 1 == 1);
            }
            assert!(p.matches(&c));
            assert!(c.hamming(&q) >= lb, "completion {c} violates closure");
        }
    }

    #[test]
    fn new_canonicalizes_bits_outside_mask() {
        let bits: BinaryCode = "1111".parse().unwrap();
        let mask: BinaryCode = "1010".parse().unwrap();
        let p = MaskedCode::new(bits, mask).unwrap();
        assert_eq!(p.to_string(), "1·1·");
        assert_eq!(p.bits().to_string(), "1010");
        let q = MaskedCode::new("1010".parse().unwrap(), "1010".parse().unwrap()).unwrap();
        assert_eq!(p, q, "canonical equality");
    }

    #[test]
    fn new_rejects_length_mismatch() {
        let r = MaskedCode::new("101".parse().unwrap(), "10".parse().unwrap());
        assert!(matches!(r, Err(BitCodeError::LengthMismatch { left: 3, right: 2 })));
    }

    proptest! {
        #[test]
        fn prop_common_is_commutative_associative(seed in any::<u64>(), len in 1usize..150) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = MaskedCode::full(BinaryCode::random(len, &mut rng));
            let b = MaskedCode::full(BinaryCode::random(len, &mut rng));
            let c = MaskedCode::full(BinaryCode::random(len, &mut rng));
            prop_assert_eq!(a.common(&b), b.common(&a));
            prop_assert_eq!(a.common(&b).common(&c), a.common(&b.common(&c)));
        }

        #[test]
        fn prop_common_matches_both_sources(seed in any::<u64>(), len in 1usize..150) {
            let mut rng = StdRng::seed_from_u64(seed);
            let x = BinaryCode::random(len, &mut rng);
            let y = BinaryCode::random(len, &mut rng);
            let c = MaskedCode::full(x.clone()).common(&MaskedCode::full(y.clone()));
            prop_assert!(c.matches(&x));
            prop_assert!(c.matches(&y));
            // Maximality: every agreeing position is cared about.
            for i in 0..len {
                if x.get(i) == y.get(i) {
                    prop_assert!(c.mask().get(i));
                }
            }
        }

        #[test]
        fn prop_masked_distance_lower_bounds_true_distance(
            seed in any::<u64>(), len in 1usize..150
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let code = BinaryCode::random(len, &mut rng);
            let q = BinaryCode::random(len, &mut rng);
            let mask = BinaryCode::random(len, &mut rng);
            let p = MaskedCode::new(code.clone(), mask).unwrap();
            prop_assert!(p.matches(&code));
            prop_assert!(p.distance_to(&q) <= code.hamming(&q));
        }

        #[test]
        fn prop_distance_within_agrees_with_distance_to(
            seed in any::<u64>(), len in 1usize..300, limit in 0u32..40
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let code = BinaryCode::random(len, &mut rng);
            let mask = BinaryCode::random(len, &mut rng);
            let q = BinaryCode::random(len, &mut rng);
            let p = MaskedCode::new(code, mask).unwrap();
            let exact = p.distance_to(&q);
            match p.distance_within(&q, limit) {
                Some(d) => prop_assert_eq!(d, exact),
                None => prop_assert!(exact > limit),
            }
        }

        #[test]
        fn prop_subtract_then_combine_reconstructs(
            seed in any::<u64>(), len in 1usize..150
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let code = BinaryCode::random(len, &mut rng);
            let parent_mask = BinaryCode::random(len, &mut rng);
            let full = MaskedCode::full(code.clone());
            let parent = MaskedCode::new(code.clone(), parent_mask.clone()).unwrap();
            let residual = full.subtract(&parent_mask);
            let rebuilt = parent.combine(&residual);
            prop_assert_eq!(rebuilt.bits(), &code);
            prop_assert_eq!(rebuilt.mask(), &BinaryCode::ones(len));
        }
    }
}
