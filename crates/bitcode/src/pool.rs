//! A tiny scoped work-stealing pool for fan-out over borrowed data.
//!
//! Every parallel surface in the workspace — the level-parallel H-Build,
//! HA-Par's shard fan-out inside `HaServe`, and the morsel-split frontier
//! levels in `FlatStoreView` — has the same shape: `n` independent tasks
//! over data the caller only *borrows*, whose results must come back in
//! task order so merges stay byte-identical to the sequential loop.
//! [`fan_out`] is that shape, once: scoped threads (no `'static` bound,
//! so parking-lot read guards and views can be captured by reference)
//! racing a shared atomic cursor (natural work stealing — a worker that
//! finishes a cheap task immediately claims the next, so one slow task
//! never serializes the rest), results reassembled by task index.
//!
//! With `workers <= 1` (or a single task) the pool degenerates to a plain
//! inline loop with zero thread or channel overhead, which is what makes
//! it safe to leave enabled on single-core hosts.
//!
//! ```
//! use ha_bitcode::pool::fan_out;
//!
//! let data = vec![3u64, 1, 4, 1, 5];
//! let doubled = fan_out(4, data.len(), |i| data[i] * 2);
//! assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs `f(0..n)` across up to `workers` scoped threads and returns the
/// results **in task order**, exactly as the sequential
/// `(0..n).map(f).collect()` would.
///
/// Tasks are claimed from a shared atomic cursor, so scheduling is
/// work-stealing but nondeterministic; determinism of the *output* comes
/// from reassembly by index. A panic in any task propagates to the
/// caller when the thread scope joins (no result is ever silently
/// dropped).
pub fn fan_out<R, F>(workers: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The receiver outlives the scope; a send can only fail
                // if the parent already panicked, in which case this
                // worker just winds down.
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut parts: Vec<(usize, R)> = rx.into_iter().collect();
    debug_assert_eq!(parts.len(), n);
    parts.sort_unstable_by_key(|&(i, _)| i);
    parts.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn matches_sequential_map_at_any_worker_count() {
        let data: Vec<u64> = (0..257).map(|i| i * 31 + 7).collect();
        let expect: Vec<u64> = data.iter().map(|&v| v ^ 0xdead).collect();
        for workers in [0, 1, 2, 3, 8, 64] {
            let got = fan_out(workers, data.len(), |i| data[i] ^ 0xdead);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn zero_tasks_and_one_task() {
        assert_eq!(fan_out(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(fan_out(8, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let n = 1000;
        let out = fan_out(7, n, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), n);
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_caller_state_without_static_bound() {
        // The whole point of scoped threads: capture a borrowed slice
        // and a non-'static closure environment.
        let local = vec![vec![1u32, 2], vec![3], vec![]];
        let lens = fan_out(4, local.len(), |i| local[i].len());
        assert_eq!(lens, vec![2, 1, 0]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            fan_out(4, 16, |i| {
                if i == 9 {
                    panic!("task 9 failed");
                }
                i
            })
        });
        assert!(result.is_err(), "a task panic must reach the caller");
    }
}
