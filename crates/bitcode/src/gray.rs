//! Binary-reflected Gray code over multi-word [`BinaryCode`]s.
//!
//! The Dynamic HA-Index sorts codes in **Gray order** before bulk-loading
//! (Algorithm 1 of the paper). The Gray order of a code `U` is the index
//! `i` such that `gray_encode(i) == U`; sorting by that index clusters codes
//! so that neighbours differ in few bit positions and share long common
//! subsequences (Proposition 2), which is what makes the sliding-window
//! FLSSeq extraction effective.
//!
//! With bit 0 as the most significant bit, encode/decode are:
//!
//! * encode: `g = b ^ (b >> 1)` (shift toward the least significant bit),
//! * decode: `b[i] = g[0] ^ g[1] ^ … ^ g[i]` (prefix XOR from the MSB).
//!
//! Both are implemented word-wise so 512-bit codes decode in a handful of
//! operations.

use crate::BinaryCode;

/// Gray-encodes `rank`: returns the code at position `rank` of the
/// reflected Gray sequence for this code width.
///
/// ```
/// use ha_bitcode::{gray, BinaryCode};
/// let seq: Vec<String> = (0..8)
///     .map(|i| gray::gray_encode(&BinaryCode::from_u64(i, 3)).to_string())
///     .collect();
/// assert_eq!(seq, ["000", "001", "011", "010", "110", "111", "101", "100"]);
/// ```
pub fn gray_encode(rank: &BinaryCode) -> BinaryCode {
    let len = rank.len();
    let words = rank.words();
    let mut out = Vec::with_capacity(words.len());
    let mut prev_lsb = 0u64; // least significant bit of the previous word
    for &w in words {
        // b >> 1 in whole-code space: each word shifts right, receiving the
        // previous (more significant) word's lowest bit at its top.
        let shifted = (w >> 1) | (prev_lsb << 63);
        out.push(w ^ shifted);
        prev_lsb = w & 1;
    }
    BinaryCode::from_words(&out, len)
}

/// Gray-decodes `code`: returns its **Gray rank**, the position of `code`
/// in the reflected Gray sequence. Sorting codes by
/// `gray_rank(c)` (plain lexicographic order on the result) is exactly the
/// Gray ordering the paper's H-Build relies on.
pub fn gray_rank(code: &BinaryCode) -> BinaryCode {
    let len = code.len();
    let words = code.words();
    let mut out = Vec::with_capacity(words.len());
    let mut carry_parity = 0u64; // parity of all bits in more significant words
    for &w in words {
        let mut b = w;
        // Prefix-XOR within the word, MSB-first: after this, bit p of `b`
        // equals the XOR of bits p..=63 positions above it in the word.
        b ^= b >> 1;
        b ^= b >> 2;
        b ^= b >> 4;
        b ^= b >> 8;
        b ^= b >> 16;
        b ^= b >> 32;
        // Odd parity above this word flips every prefix sum in it.
        let decoded = if carry_parity == 1 { !b } else { b };
        out.push(decoded);
        carry_parity ^= w.count_ones() as u64 & 1;
    }
    // from_words masks off decoded garbage beyond `len`.
    BinaryCode::from_words(&out, len)
}

/// Compares two codes by their Gray rank. Equivalent to
/// `gray_rank(a).cmp(&gray_rank(b))` but kept as a named helper so sorting
/// call-sites read as what they are.
pub fn gray_cmp(a: &BinaryCode, b: &BinaryCode) -> std::cmp::Ordering {
    gray_rank(a).cmp(&gray_rank(b))
}

/// Sorts codes (with attached payloads) into Gray order, the first step of
/// H-Build. Uses a cached-key sort: ranks are computed once per element.
pub fn sort_by_gray_order<T>(items: &mut [(BinaryCode, T)]) {
    items.sort_by_cached_key(|(c, _)| gray_rank(c));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn encode_decode_roundtrip_small() {
        for len in 1..=10usize {
            for v in 0u64..(1 << len) {
                let rank = BinaryCode::from_u64(v, len);
                let g = gray_encode(&rank);
                assert_eq!(gray_rank(&g), rank, "len={len} v={v}");
            }
        }
    }

    #[test]
    fn consecutive_gray_codes_differ_by_one_bit() {
        let len = 9;
        for v in 0u64..511 {
            let a = gray_encode(&BinaryCode::from_u64(v, len));
            let b = gray_encode(&BinaryCode::from_u64(v + 1, len));
            assert_eq!(a.hamming(&b), 1, "rank {v} -> {}", v + 1);
        }
    }

    #[test]
    fn decode_crosses_word_boundaries() {
        // A 128-bit code whose only set bit is bit 0 (the global MSB):
        // its Gray rank is all ones (prefix XOR propagates to every bit).
        let mut g = BinaryCode::zero(128);
        g.set(0, true);
        assert_eq!(gray_rank(&g), BinaryCode::ones(128));
        assert_eq!(gray_encode(&BinaryCode::ones(128)), {
            // encode(all ones) = 100...0 ^ carry pattern: b ^ (b>>1) = 10101…
            let mut expect = BinaryCode::zero(128);
            expect.set(0, true);
            expect
        });
    }

    #[test]
    fn paper_gray_sort_clusters_neighbours() {
        // The paper (§4.4) sorts Table 2's codes in Gray order and obtains a
        // sequence in which t2 and t7 (which differ only in bit 0) are
        // adjacent, as are t0/t3 and t1/t5. Verify the adjacency structure.
        let table: Vec<(&str, &str)> = vec![
            ("t0", "001001010"),
            ("t1", "001011101"),
            ("t2", "011001100"),
            ("t3", "101001010"),
            ("t4", "101110110"),
            ("t5", "101011101"),
            ("t6", "101101010"),
            ("t7", "111001100"),
        ];
        let mut items: Vec<(BinaryCode, &str)> = table
            .iter()
            .map(|(name, s)| (s.parse().unwrap(), *name))
            .collect();
        sort_by_gray_order(&mut items);
        let order: Vec<&str> = items.iter().map(|(_, n)| *n).collect();
        let pos = |n: &str| order.iter().position(|x| *x == n).unwrap();
        // The paper's own listings disagree with each other on the exact
        // permutation (§4.4 vs Figure 3), so we assert the *clustering*
        // consequence it uses: the highly-similar pairs it calls out land
        // next to each other.
        assert_eq!(pos("t2").abs_diff(pos("t7")), 1, "t2,t7 adjacent: {order:?}");
        assert_eq!(pos("t3").abs_diff(pos("t5")), 1, "t3,t5 adjacent: {order:?}");
        assert_eq!(pos("t0").abs_diff(pos("t1")), 1, "t0,t1 adjacent: {order:?}");
    }

    proptest! {
        #[test]
        fn prop_roundtrip_any_width(seed in any::<u64>(), len in 1usize..520) {
            let mut rng = StdRng::seed_from_u64(seed);
            let c = BinaryCode::random(len, &mut rng);
            prop_assert_eq!(gray_encode(&gray_rank(&c)), c.clone());
            prop_assert_eq!(gray_rank(&gray_encode(&c)), c);
        }

        #[test]
        fn prop_gray_rank_is_monotone_bijection(seed in any::<u64>(), len in 1usize..200) {
            // Successor in rank space maps to Hamming distance 1 in code
            // space, for arbitrary widths (incl. multi-word).
            let mut rng = StdRng::seed_from_u64(seed);
            let mut rank = BinaryCode::random(len, &mut rng);
            // Avoid overflow: clear the last bit, then set it to make +1.
            let last = len - 1;
            rank.set(last, false);
            let a = gray_encode(&rank);
            rank.set(last, true);
            let b = gray_encode(&rank);
            prop_assert_eq!(a.hamming(&b), 1);
        }

        #[test]
        fn prop_gray_order_total_and_consistent(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 50;
            let mut items: Vec<(BinaryCode, usize)> =
                (0..n).map(|i| (BinaryCode::random(40, &mut rng), i)).collect();
            sort_by_gray_order(&mut items);
            for w in items.windows(2) {
                prop_assert_ne!(
                    gray_cmp(&w[0].0, &w[1].0),
                    std::cmp::Ordering::Greater
                );
            }
        }
    }

    #[test]
    fn gray_rank_distribution_smoke() {
        // Ranks of random codes should themselves look uniform: the mean
        // popcount of the rank of random 64-bit codes is ~32.
        let mut rng = StdRng::seed_from_u64(42);
        let mut total = 0u64;
        let trials = 2000;
        for _ in 0..trials {
            let c = BinaryCode::from_u64(rng.gen(), 64);
            total += gray_rank(&c).count_ones() as u64;
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 32.0).abs() < 1.5, "mean popcount {mean}");
    }
}
