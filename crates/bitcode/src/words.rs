//! Word-level storage shared by [`crate::BinaryCode`] and
//! [`crate::MaskedCode`].
//!
//! Codes of up to [`crate::INLINE_BITS`] bits (which covers the 32/64/128-bit
//! codes used throughout the paper's evaluation) are stored inline without a
//! heap allocation; longer codes spill to a boxed slice. The variant is a
//! pure function of the code length, so derived equality/hashing is sound.

use crate::INLINE_BITS;

const INLINE_WORDS: usize = INLINE_BITS / 64;

/// Packed big-endian word storage: bit 0 of the code is the most
/// significant bit of `words[0]`.
///
/// Invariant: every bit beyond the owning code's length is zero, and the
/// number of words is exactly `words_for(len)` (heap) or `INLINE_WORDS`
/// (inline, with unused words zeroed).
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) enum Words {
    Inline([u64; INLINE_WORDS]),
    Heap(Box<[u64]>),
}

/// Number of `u64` words needed for `bits` bits.
#[inline]
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Mask selecting the *used* bits of the final word of a `bits`-bit code.
#[inline]
pub(crate) fn tail_mask(bits: usize) -> u64 {
    let rem = bits % 64;
    if rem == 0 {
        !0
    } else {
        !0 << (64 - rem)
    }
}

/// Batch masked-distance kernel over a **word-plane** sibling group.
///
/// `planes` stores the patterns of `group` siblings in structure-of-arrays
/// order: for each word index `w` of the code, first the *bits* word `w` of
/// every sibling (`group` words), then the *mask* word `w` of every sibling
/// (`group` words). The whole group therefore occupies
/// `2 * query.len() * group` contiguous words:
///
/// ```text
/// [ bits w0 of s0..s(g-1) | mask w0 of s0..s(g-1) |
///   bits w1 of s0..s(g-1) | mask w1 of s0..s(g-1) | … ]
/// ```
///
/// `acc[s]` carries the accumulated masked distance of sibling `s`'s
/// *parent path* on entry. On exit, `acc[s] <= limit` implies `acc[s]` is
/// the exact accumulated distance including sibling `s`'s own pattern;
/// `acc[s] > limit` means the sibling is pruned (the value may be partial —
/// the scan bails out of a sibling as soon as its accumulator exceeds
/// `limit`, and out of the whole group as soon as no sibling is still
/// within budget).
///
/// # Panics
/// If `planes.len() != 2 * query.len() * group`. `acc.len() == group` is
/// debug-asserted at this boundary; in release builds a short `acc` can
/// only truncate the sweep or panic on an interior bounds check.
pub fn masked_distance_many(query: &[u64], planes: &[u64], group: usize, limit: u32, acc: &mut [u32]) {
    debug_assert_eq!(acc.len(), group, "one accumulator per sibling");
    assert_eq!(
        planes.len(),
        2 * query.len() * group,
        "planes must hold bits+mask words for every sibling"
    );
    if group == 0 {
        return;
    }
    // One `chunks_exact` step per word-plane pair hoists the former
    // `2 * w * group` base-offset recomputation out of the sibling loop.
    for (plane, &q) in planes.chunks_exact(2 * group).zip(query) {
        let (bits, mask) = plane.split_at(group);
        let mut live = false;
        for s in 0..group {
            let a = acc[s];
            if a <= limit {
                let d = a + ((q ^ bits[s]) & mask[s]).count_ones();
                acc[s] = d;
                live |= d <= limit;
            }
        }
        if !live {
            return;
        }
    }
}

impl Words {
    /// Zeroed storage for a `bits`-bit code.
    pub(crate) fn zeroed(bits: usize) -> Self {
        let n = words_for(bits);
        if n <= INLINE_WORDS {
            Words::Inline([0; INLINE_WORDS])
        } else {
            Words::Heap(vec![0u64; n].into_boxed_slice())
        }
    }

    #[inline]
    pub(crate) fn as_slice(&self) -> &[u64] {
        match self {
            Words::Inline(a) => a,
            Words::Heap(b) => b,
        }
    }

    #[inline]
    pub(crate) fn as_mut_slice(&mut self) -> &mut [u64] {
        match self {
            Words::Inline(a) => a,
            Words::Heap(b) => b,
        }
    }

    /// Bytes this storage occupies on the heap (0 for inline codes).
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            Words::Inline(_) => 0,
            Words::Heap(b) => b.len() * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn tail_mask_boundaries() {
        assert_eq!(tail_mask(64), !0);
        assert_eq!(tail_mask(1), 1u64 << 63);
        assert_eq!(tail_mask(63), !1);
        assert_eq!(tail_mask(32), 0xFFFF_FFFF_0000_0000);
    }

    #[test]
    fn inline_vs_heap_selection() {
        assert!(matches!(Words::zeroed(128), Words::Inline(_)));
        assert!(matches!(Words::zeroed(129), Words::Heap(_)));
        assert_eq!(Words::zeroed(64).heap_bytes(), 0);
        assert_eq!(Words::zeroed(256).heap_bytes(), 32);
    }

    /// Packs per-sibling (bits, mask) word vectors into the plane layout
    /// consumed by [`masked_distance_many`].
    fn pack_planes(group: &[(Vec<u64>, Vec<u64>)]) -> Vec<u64> {
        let words = group.first().map_or(0, |(b, _)| b.len());
        let mut planes = Vec::new();
        for w in 0..words {
            for (bits, _) in group {
                planes.push(bits[w]);
            }
            for (_, mask) in group {
                planes.push(mask[w]);
            }
        }
        planes
    }

    fn naive_masked(query: &[u64], bits: &[u64], mask: &[u64]) -> u32 {
        query
            .iter()
            .zip(bits)
            .zip(mask)
            .map(|((q, b), m)| ((q ^ b) & m).count_ones())
            .sum()
    }

    #[test]
    fn masked_distance_many_matches_naive_when_within_limit() {
        // Deterministic pseudo-random words via a splitmix-style mixer.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for words in [1usize, 2, 8] {
            for group in [1usize, 2, 7] {
                let query: Vec<u64> = (0..words).map(|_| next()).collect();
                let sibs: Vec<(Vec<u64>, Vec<u64>)> = (0..group)
                    .map(|_| {
                        (
                            (0..words).map(|_| next()).collect(),
                            (0..words).map(|_| next()).collect(),
                        )
                    })
                    .collect();
                let planes = pack_planes(&sibs);
                for limit in [0u32, 3, 64, u32::MAX] {
                    for init in [0u32, 2] {
                        let mut acc = vec![init; group];
                        masked_distance_many(&query, &planes, group, limit, &mut acc);
                        for (s, (bits, mask)) in sibs.iter().enumerate() {
                            let exact = init + naive_masked(&query, bits, mask);
                            if exact <= limit {
                                assert_eq!(acc[s], exact, "words={words} group={group}");
                            } else {
                                assert!(acc[s] > limit, "pruned sibling must stay over budget");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn masked_distance_many_empty_group_and_zero_words() {
        // Degenerate shapes must not panic.
        masked_distance_many(&[0u64; 2], &[], 0, 5, &mut []);
        masked_distance_many(&[], &[], 3, 5, &mut [0, 1, 2]);
    }
}
