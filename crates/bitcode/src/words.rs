//! Word-level storage shared by [`crate::BinaryCode`] and
//! [`crate::MaskedCode`].
//!
//! Codes of up to [`crate::INLINE_BITS`] bits (which covers the 32/64/128-bit
//! codes used throughout the paper's evaluation) are stored inline without a
//! heap allocation; longer codes spill to a boxed slice. The variant is a
//! pure function of the code length, so derived equality/hashing is sound.

use crate::INLINE_BITS;

const INLINE_WORDS: usize = INLINE_BITS / 64;

/// Packed big-endian word storage: bit 0 of the code is the most
/// significant bit of `words[0]`.
///
/// Invariant: every bit beyond the owning code's length is zero, and the
/// number of words is exactly `words_for(len)` (heap) or `INLINE_WORDS`
/// (inline, with unused words zeroed).
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) enum Words {
    Inline([u64; INLINE_WORDS]),
    Heap(Box<[u64]>),
}

/// Number of `u64` words needed for `bits` bits.
#[inline]
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Mask selecting the *used* bits of the final word of a `bits`-bit code.
#[inline]
pub(crate) fn tail_mask(bits: usize) -> u64 {
    let rem = bits % 64;
    if rem == 0 {
        !0
    } else {
        !0 << (64 - rem)
    }
}

impl Words {
    /// Zeroed storage for a `bits`-bit code.
    pub(crate) fn zeroed(bits: usize) -> Self {
        let n = words_for(bits);
        if n <= INLINE_WORDS {
            Words::Inline([0; INLINE_WORDS])
        } else {
            Words::Heap(vec![0u64; n].into_boxed_slice())
        }
    }

    #[inline]
    pub(crate) fn as_slice(&self) -> &[u64] {
        match self {
            Words::Inline(a) => a,
            Words::Heap(b) => b,
        }
    }

    #[inline]
    pub(crate) fn as_mut_slice(&mut self) -> &mut [u64] {
        match self {
            Words::Inline(a) => a,
            Words::Heap(b) => b,
        }
    }

    /// Bytes this storage occupies on the heap (0 for inline codes).
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            Words::Inline(_) => 0,
            Words::Heap(b) => b.len() * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn tail_mask_boundaries() {
        assert_eq!(tail_mask(64), !0);
        assert_eq!(tail_mask(1), 1u64 << 63);
        assert_eq!(tail_mask(63), !1);
        assert_eq!(tail_mask(32), 0xFFFF_FFFF_0000_0000);
    }

    #[test]
    fn inline_vs_heap_selection() {
        assert!(matches!(Words::zeroed(128), Words::Inline(_)));
        assert!(matches!(Words::zeroed(129), Words::Heap(_)));
        assert_eq!(Words::zeroed(64).heap_bytes(), 0);
        assert_eq!(Words::zeroed(256).heap_bytes(), 32);
    }
}
