//! FNV-1a 64-bit — the workspace's single integrity-checksum primitive.
//!
//! Three layers stamp FNV-1a digests on bytes that cross a trust
//! boundary: the DFS block checksums (`ha_mapreduce::checksum`), the
//! HA-Index wire format's footer (`ha_core`'s HAIX blobs), the WAL frame
//! checksums (`ha_mapreduce::wal`), and the HA-Store snapshot footer
//! (`ha-store`). They must all be the *same* function — a store written
//! by one layer is verified by another — so the implementation lives
//! here, in the lowest crate of the workspace, and every consumer
//! re-exports it instead of keeping a private copy.
//!
//! Small, dependency-free, and good enough to detect the bit rot the
//! storage-fault plans inject; this is an integrity check against
//! corruption, not an adversary.
//!
//! ```
//! use ha_bitcode::fnv::fnv64;
//!
//! // Standard FNV-1a test vectors.
//! assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
//! assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
//! ```

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Digests raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Digests a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// One-shot digest of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
        let mut h = Fnv64::new();
        h.write_u64(0x0807_0605_0403_0201);
        assert_eq!(h.finish(), fnv64(&[1, 2, 3, 4, 5, 6, 7, 8]));
    }
}
