//! The [`BinaryCode`] type: a fixed-length bit string with fast Hamming
//! distance.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use rand::Rng;

use crate::error::BitCodeError;
use crate::words::{tail_mask, words_for, Words};
use crate::MAX_BITS;

/// A fixed-length binary code — the hashed representation of a data tuple.
///
/// Bit `0` is the most significant (leftmost) bit; `Ord` compares codes
/// exactly like their string forms. All binary operations require both
/// operands to have the same length and panic otherwise (length mismatch is
/// a programming error, not a data error — codes in one dataset share one
/// learned hash function and hence one length).
///
/// ```
/// use ha_bitcode::BinaryCode;
///
/// let t0: BinaryCode = "001001010".parse().unwrap();
/// assert_eq!(t0.len(), 9);
/// assert!(!t0.get(0));
/// assert!(t0.get(2));
/// assert_eq!(t0.to_string(), "001001010");
/// ```
#[derive(Clone)]
pub struct BinaryCode {
    len: u32,
    words: Words,
}

impl BinaryCode {
    /// An all-zero code of `len` bits.
    ///
    /// # Panics
    /// If `len` is zero or exceeds [`MAX_BITS`].
    pub fn zero(len: usize) -> Self {
        Self::try_zero(len).expect("invalid code length")
    }

    /// Fallible form of [`BinaryCode::zero`].
    pub fn try_zero(len: usize) -> Result<Self, BitCodeError> {
        if len == 0 {
            return Err(BitCodeError::Empty);
        }
        if len > MAX_BITS {
            return Err(BitCodeError::TooLong { requested: len });
        }
        Ok(BinaryCode {
            len: len as u32,
            words: Words::zeroed(len),
        })
    }

    /// An all-one code of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut c = Self::zero(len);
        let n = words_for(len);
        let w = c.words.as_mut_slice();
        for word in w.iter_mut().take(n) {
            *word = !0;
        }
        w[n - 1] &= tail_mask(len);
        c
    }

    /// Builds a code from the low `len` bits of `value`, most significant
    /// first: `from_u64(0b101, 3)` is the code `"101"`.
    ///
    /// # Panics
    /// If `len` is zero or greater than 64.
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!((1..=64).contains(&len), "from_u64 supports 1..=64 bits");
        let mut c = Self::zero(len);
        c.words.as_mut_slice()[0] = value << (64 - len);
        c
    }

    /// Interprets the first `min(len, 64)` bits as an unsigned integer,
    /// most significant first — the inverse of [`BinaryCode::from_u64`]
    /// for codes of at most 64 bits.
    pub fn to_u64(&self) -> u64 {
        let len = self.len().min(64);
        self.words()[0] >> (64 - len)
    }

    /// Builds a code from packed big-endian words (bit 0 = MSB of
    /// `words[0]`); bits beyond `len` are cleared.
    pub fn from_words(words: &[u64], len: usize) -> Self {
        assert!(words.len() >= words_for(len), "not enough words for length");
        let mut c = Self::zero(len);
        let n = words_for(len);
        let dst = c.words.as_mut_slice();
        dst[..n].copy_from_slice(&words[..n]);
        dst[n - 1] &= tail_mask(len);
        c
    }

    /// A uniformly random code of `len` bits.
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        let mut c = Self::zero(len);
        let n = words_for(len);
        let w = c.words.as_mut_slice();
        for word in w.iter_mut().take(n) {
            *word = rng.gen();
        }
        w[n - 1] &= tail_mask(len);
        c
    }

    /// Length of the code in bits.
    #[allow(clippy::len_without_is_empty)] // codes are never empty
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// The packed words actually in use (big-endian bit order).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words.as_slice()[..words_for(self.len as usize)]
    }

    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        let n = words_for(self.len as usize);
        &mut self.words.as_mut_slice()[..n]
    }

    /// Value of bit `i` (bit 0 is the leftmost).
    ///
    /// # Panics
    /// If `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len(), "bit index {i} out of range");
        let w = self.words.as_slice()[i / 64];
        (w >> (63 - (i % 64))) & 1 == 1
    }

    /// Sets bit `i` to `v`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len(), "bit index {i} out of range");
        let w = &mut self.words.as_mut_slice()[i / 64];
        let bit = 1u64 << (63 - (i % 64));
        if v {
            *w |= bit;
        } else {
            *w &= !bit;
        }
    }

    /// Flips bit `i`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len(), "bit index {i} out of range");
        self.words.as_mut_slice()[i / 64] ^= 1u64 << (63 - (i % 64));
    }

    /// A copy of `self` with bit `i` flipped.
    pub fn with_flipped(&self, i: usize) -> Self {
        let mut c = self.clone();
        c.flip(i);
        c
    }

    /// Number of one-bits.
    pub fn count_ones(&self) -> u32 {
        self.words().iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance to `other`: XOR followed by popcount, the
    /// fundamental operation of the whole system.
    ///
    /// # Panics
    /// If the codes have different lengths.
    #[inline]
    pub fn hamming(&self, other: &BinaryCode) -> u32 {
        self.assert_same_len(other);
        self.words()
            .iter()
            .zip(other.words())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Hamming distance restricted to the positions selected by `mask`
    /// (1 = counted). This is the shared-pattern distance the HA-Index uses
    /// to verify many tuples with one computation.
    #[inline]
    pub fn hamming_masked(&self, other: &BinaryCode, mask: &BinaryCode) -> u32 {
        self.assert_same_len(other);
        self.assert_same_len(mask);
        self.words()
            .iter()
            .zip(other.words())
            .zip(mask.words())
            .map(|((a, b), m)| ((a ^ b) & m).count_ones())
            .sum()
    }

    /// Early-exit Hamming distance: returns `None` as soon as the running
    /// count exceeds `limit`, otherwise the exact distance. Saves work in
    /// scan-heavy baselines for long codes.
    #[inline]
    pub fn hamming_within(&self, other: &BinaryCode, limit: u32) -> Option<u32> {
        self.assert_same_len(other);
        let mut acc = 0u32;
        for (a, b) in self.words().iter().zip(other.words()) {
            acc += (a ^ b).count_ones();
            if acc > limit {
                return None;
            }
        }
        Some(acc)
    }

    /// Bitwise AND (same length required).
    pub fn and(&self, other: &BinaryCode) -> BinaryCode {
        self.zip_with(other, |a, b| a & b)
    }

    /// Bitwise OR (same length required).
    pub fn or(&self, other: &BinaryCode) -> BinaryCode {
        self.zip_with(other, |a, b| a | b)
    }

    /// Bitwise XOR (same length required).
    pub fn xor(&self, other: &BinaryCode) -> BinaryCode {
        self.zip_with(other, |a, b| a ^ b)
    }

    /// Bitwise NOT within the code length (bits beyond `len` stay zero).
    pub fn not(&self) -> BinaryCode {
        let mut out = self.clone();
        let len = self.len();
        let n = words_for(len);
        let w = out.words_mut();
        for word in w.iter_mut() {
            *word = !*word;
        }
        w[n - 1] &= tail_mask(len);
        out
    }

    /// In-place AND.
    pub fn and_assign(&mut self, other: &BinaryCode) {
        self.assert_same_len(other);
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= b;
        }
    }

    /// In-place OR.
    pub fn or_assign(&mut self, other: &BinaryCode) {
        self.assert_same_len(other);
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= b;
        }
    }

    /// In-place AND-NOT (`self &= !other`), used to strip a parent pattern's
    /// positions from a child.
    pub fn and_not_assign(&mut self, other: &BinaryCode) {
        self.assert_same_len(other);
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= !b;
        }
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// True if `self & other == 0` — the masks cover disjoint positions.
    pub fn is_disjoint(&self, other: &BinaryCode) -> bool {
        self.assert_same_len(other);
        self.words().iter().zip(other.words()).all(|(a, b)| a & b == 0)
    }

    /// True if every set bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &BinaryCode) -> bool {
        self.assert_same_len(other);
        self.words().iter().zip(other.words()).all(|(a, b)| a & !b == 0)
    }

    /// Extracts `width` bits starting at bit `start` as an integer
    /// (most significant first). `width` must be 1..=64 and the range must
    /// lie inside the code.
    pub fn extract(&self, start: usize, width: usize) -> u64 {
        assert!((1..=64).contains(&width), "extract width must be 1..=64");
        assert!(start + width <= self.len(), "extract range out of bounds");
        let ws = self.words.as_slice();
        let first = start / 64;
        let offset = start % 64;
        let hi = ws[first] << offset;
        let value = if offset + width <= 64 {
            hi
        } else {
            hi | (ws[first + 1] >> (64 - offset))
        };
        value >> (64 - width)
    }

    /// Packs the code into `ceil(len/8)` bytes, MSB-first — the wire form
    /// used by the HA-Index serializer and by shuffle-size accounting.
    ///
    /// ```
    /// use ha_bitcode::BinaryCode;
    /// let c: BinaryCode = "10100000 1".parse().unwrap(); // 9 bits
    /// assert_eq!(c.to_packed_bytes(), vec![0b1010_0000, 0b1000_0000]);
    /// ```
    pub fn to_packed_bytes(&self) -> Vec<u8> {
        let nbytes = self.len().div_ceil(8);
        let mut out = Vec::with_capacity(nbytes);
        let words = self.words();
        for byte_i in 0..nbytes {
            let word = words[byte_i / 8];
            out.push((word >> (56 - 8 * (byte_i % 8))) as u8);
        }
        out
    }

    /// FNV-1a hash of the packed wire form, computed straight off the
    /// words — exactly `fnv64(&self.to_packed_bytes())` without the
    /// per-call `Vec`. Shard routing hashes every routed mutation and
    /// query, so this equality is load-bearing: persisted services would
    /// mis-route recovered codes if the two ever diverged (pinned by a
    /// proptest below).
    pub fn packed_fnv64(&self) -> u64 {
        let nbytes = self.len().div_ceil(8);
        let words = self.words();
        let mut h = crate::fnv::Fnv64::new();
        let full_words = nbytes / 8;
        for &w in &words[..full_words] {
            h.write(&w.to_be_bytes());
        }
        for byte_i in full_words * 8..nbytes {
            let word = words[byte_i / 8];
            h.write(&[(word >> (56 - 8 * (byte_i % 8))) as u8]);
        }
        h.finish()
    }

    /// Rebuilds a `len`-bit code from its packed form (inverse of
    /// [`BinaryCode::to_packed_bytes`]). Bits beyond `len` in the final
    /// byte are ignored.
    ///
    /// # Panics
    /// If `bytes` is shorter than `ceil(len/8)` or `len` is invalid.
    pub fn from_packed_bytes(bytes: &[u8], len: usize) -> Self {
        let nbytes = len.div_ceil(8);
        assert!(bytes.len() >= nbytes, "not enough bytes for {len} bits");
        let mut c = Self::zero(len);
        {
            let words = c.words_mut();
            for (byte_i, &b) in bytes.iter().take(nbytes).enumerate() {
                words[byte_i / 8] |= (b as u64) << (56 - 8 * (byte_i % 8));
            }
            let n = words.len();
            words[n - 1] &= tail_mask(len);
        }
        c
    }

    /// Heap bytes owned by this code (0 for codes of at most
    /// [`crate::INLINE_BITS`] bits).
    pub fn heap_bytes(&self) -> usize {
        self.words.heap_bytes()
    }

    /// Total bytes attributable to this code (struct + heap), used by the
    /// memory accounting of the Table 4 experiment.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.heap_bytes()
    }

    /// Iterates over the positions of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words().iter().enumerate().flat_map(|(wi, &w)| {
            let mut rem = w;
            std::iter::from_fn(move || {
                if rem == 0 {
                    None
                } else {
                    let lead = rem.leading_zeros() as usize;
                    rem &= !(1u64 << (63 - lead));
                    Some(wi * 64 + lead)
                }
            })
        })
    }

    #[inline]
    fn assert_same_len(&self, other: &BinaryCode) {
        assert_eq!(
            self.len, other.len,
            "binary code length mismatch: {} vs {}",
            self.len, other.len
        );
    }

    fn zip_with(&self, other: &BinaryCode, f: impl Fn(u64, u64) -> u64) -> BinaryCode {
        self.assert_same_len(other);
        let mut out = self.clone();
        for (a, b) in out.words_mut().iter_mut().zip(other.words()) {
            *a = f(*a, *b);
        }
        out
    }
}

impl PartialEq for BinaryCode {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words() == other.words()
    }
}

impl Eq for BinaryCode {}

impl Hash for BinaryCode {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        self.words().hash(state);
    }
}

impl PartialOrd for BinaryCode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BinaryCode {
    /// Lexicographic (string-form) order. Codes of different lengths order
    /// by length first so `Ord` stays total; mixed-length comparison does
    /// not occur in practice.
    fn cmp(&self, other: &Self) -> Ordering {
        self.len
            .cmp(&other.len)
            .then_with(|| self.words().cmp(other.words()))
    }
}

impl fmt::Display for BinaryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len() {
            f.write_str(if self.get(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BinaryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BinaryCode({self})")
    }
}

impl FromStr for BinaryCode {
    type Err = BitCodeError;

    /// Parses a string of `0`/`1` characters; spaces are ignored so the
    /// paper's grouped notation (`"001 001 010"`) parses directly.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut bits = Vec::with_capacity(s.len());
        for (at, ch) in s.char_indices() {
            match ch {
                '0' => bits.push(false),
                '1' => bits.push(true),
                ' ' | '_' => {}
                ch => return Err(BitCodeError::BadChar { ch, at }),
            }
        }
        let mut c = BinaryCode::try_zero(bits.len())?;
        for (i, b) in bits.iter().enumerate() {
            if *b {
                c.set(i, true);
            }
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parse_and_display_roundtrip() {
        let s = "001001010";
        let c: BinaryCode = s.parse().unwrap();
        assert_eq!(c.to_string(), s);
        assert_eq!(c.len(), 9);
    }

    #[test]
    fn parse_with_spaces() {
        let c: BinaryCode = "001 001 010".parse().unwrap();
        assert_eq!(c.to_string(), "001001010");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            "01x".parse::<BinaryCode>(),
            Err(BitCodeError::BadChar { ch: 'x', at: 2 })
        ));
        assert!(matches!("".parse::<BinaryCode>(), Err(BitCodeError::Empty)));
    }

    #[test]
    fn get_set_flip() {
        let mut c = BinaryCode::zero(70);
        c.set(0, true);
        c.set(69, true);
        assert!(c.get(0) && c.get(69) && !c.get(35));
        c.flip(35);
        assert!(c.get(35));
        c.flip(0);
        assert!(!c.get(0));
        assert_eq!(c.count_ones(), 2);
    }

    #[test]
    fn hamming_matches_paper_example() {
        // Example 1 of the paper: query 101100010, h = 3 over Table 2a.
        let q: BinaryCode = "101100010".parse().unwrap();
        let table_s = [
            "001001010", "001011101", "011001100", "101001010", "101110110",
            "101011101", "101101010", "111001100",
        ];
        let dists: Vec<u32> = table_s
            .iter()
            .map(|s| q.hamming(&s.parse().unwrap()))
            .collect();
        let qualifying: Vec<usize> = dists
            .iter()
            .enumerate()
            .filter(|(_, &d)| d <= 3)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(qualifying, vec![0, 3, 4, 6], "paper output is t0,t3,t4,t6");
    }

    #[test]
    fn hamming_within_early_exit() {
        let a = BinaryCode::zero(128);
        let b = BinaryCode::ones(128);
        assert_eq!(a.hamming_within(&b, 127), None);
        assert_eq!(a.hamming_within(&b, 128), Some(128));
        assert_eq!(a.hamming_within(&a, 0), Some(0));
    }

    #[test]
    fn masked_hamming_counts_only_cared_bits() {
        let a: BinaryCode = "10101010".parse().unwrap();
        let b: BinaryCode = "01010101".parse().unwrap();
        let m: BinaryCode = "11110000".parse().unwrap();
        assert_eq!(a.hamming_masked(&b, &m), 4);
        let m2: BinaryCode = "10000001".parse().unwrap();
        assert_eq!(a.hamming_masked(&b, &m2), 2);
    }

    #[test]
    fn from_u64_roundtrip() {
        let c = BinaryCode::from_u64(0b101, 3);
        assert_eq!(c.to_string(), "101");
        assert_eq!(c.to_u64(), 0b101);
        let c = BinaryCode::from_u64(u64::MAX, 64);
        assert_eq!(c.count_ones(), 64);
        assert_eq!(c.to_u64(), u64::MAX);
    }

    #[test]
    fn extract_within_and_across_words() {
        let mut c = BinaryCode::zero(128);
        // Set bits 60..=67 to 1 (spans the word boundary).
        for i in 60..68 {
            c.set(i, true);
        }
        assert_eq!(c.extract(60, 8), 0xFF);
        assert_eq!(c.extract(56, 8), 0x0F);
        assert_eq!(c.extract(64, 8), 0xF0);
        assert_eq!(c.extract(0, 4), 0);
    }

    #[test]
    fn extract_full_word() {
        let c = BinaryCode::from_u64(0xDEAD_BEEF_0123_4567, 64);
        assert_eq!(c.extract(0, 64), 0xDEAD_BEEF_0123_4567);
        assert_eq!(c.extract(0, 32), 0xDEAD_BEEF);
        assert_eq!(c.extract(32, 32), 0x0123_4567);
    }

    #[test]
    fn ordering_is_string_order() {
        let mut codes: Vec<BinaryCode> = ["110", "001", "101", "010"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        codes.sort();
        let strings: Vec<String> = codes.iter().map(|c| c.to_string()).collect();
        assert_eq!(strings, vec!["001", "010", "101", "110"]);
    }

    #[test]
    fn ones_and_not() {
        let ones = BinaryCode::ones(70);
        assert_eq!(ones.count_ones(), 70);
        assert!(ones.not().is_zero());
        assert_eq!(BinaryCode::zero(70).not(), ones);
    }

    #[test]
    fn set_operations() {
        let a: BinaryCode = "1100".parse().unwrap();
        let b: BinaryCode = "1010".parse().unwrap();
        assert_eq!(a.and(&b).to_string(), "1000");
        assert_eq!(a.or(&b).to_string(), "1110");
        assert_eq!(a.xor(&b).to_string(), "0110");
        assert!(a.and(&b.not()).is_disjoint(&b));
        assert!("1000".parse::<BinaryCode>().unwrap().is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn iter_ones_positions() {
        let c: BinaryCode = "0100100001".parse().unwrap();
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![1, 4, 9]);
        let mut long = BinaryCode::zero(200);
        long.set(0, true);
        long.set(64, true);
        long.set(199, true);
        assert_eq!(long.iter_ones().collect::<Vec<_>>(), vec![0, 64, 199]);
    }

    #[test]
    fn packed_bytes_roundtrip_all_lengths() {
        let mut rng = StdRng::seed_from_u64(77);
        for len in [1usize, 7, 8, 9, 63, 64, 65, 100, 128, 200, 512] {
            let c = BinaryCode::random(len, &mut rng);
            let packed = c.to_packed_bytes();
            assert_eq!(packed.len(), len.div_ceil(8));
            assert_eq!(BinaryCode::from_packed_bytes(&packed, len), c, "len={len}");
        }
    }

    #[test]
    fn packed_fnv64_equals_hashing_the_packed_bytes() {
        // Shard routing depends on this equality bit-for-bit: services
        // persisted before the alloc-free hash must route recovered
        // codes to the same shards after it.
        let mut rng = StdRng::seed_from_u64(78);
        for len in [1usize, 7, 8, 9, 63, 64, 65, 100, 128, 200, 512] {
            for _ in 0..16 {
                let c = BinaryCode::random(len, &mut rng);
                assert_eq!(
                    c.packed_fnv64(),
                    crate::fnv::fnv64(&c.to_packed_bytes()),
                    "len={len}"
                );
            }
        }
    }

    #[test]
    fn packed_bytes_msb_first() {
        let c: BinaryCode = "1000 0001 1".parse().unwrap(); // 9 bits
        assert_eq!(c.to_packed_bytes(), vec![0b1000_0001, 0b1000_0000]);
        // Garbage in the tail of the last byte is masked on decode.
        let d = BinaryCode::from_packed_bytes(&[0b1000_0001, 0b1111_1111], 9);
        assert_eq!(d, c);
    }

    #[test]
    fn memory_accounting() {
        assert_eq!(BinaryCode::zero(64).heap_bytes(), 0);
        assert_eq!(BinaryCode::zero(128).heap_bytes(), 0);
        assert_eq!(BinaryCode::zero(192).heap_bytes(), 24);
        assert_eq!(BinaryCode::zero(512).heap_bytes(), 64);
    }

    #[test]
    fn random_has_expected_length_and_tail_zeroed() {
        let mut rng = StdRng::seed_from_u64(7);
        for len in [1usize, 7, 63, 64, 65, 100, 127, 128, 129, 512] {
            let c = BinaryCode::random(len, &mut rng);
            assert_eq!(c.len(), len);
            // Display must produce exactly `len` chars and parse back equal.
            let s = c.to_string();
            assert_eq!(s.len(), len);
            assert_eq!(s.parse::<BinaryCode>().unwrap(), c);
        }
    }

    proptest! {
        #[test]
        fn prop_hamming_symmetric_and_identity(
            a_bits in proptest::collection::vec(any::<bool>(), 1..300),
            b_bits in proptest::collection::vec(any::<bool>(), 1..300),
        ) {
            let n = a_bits.len().min(b_bits.len());
            let mut a = BinaryCode::zero(n);
            let mut b = BinaryCode::zero(n);
            for i in 0..n {
                a.set(i, a_bits[i]);
                b.set(i, b_bits[i]);
            }
            prop_assert_eq!(a.hamming(&b), b.hamming(&a));
            prop_assert_eq!(a.hamming(&a), 0);
            // Against the naive definition.
            let naive = (0..n).filter(|&i| a.get(i) != b.get(i)).count() as u32;
            prop_assert_eq!(a.hamming(&b), naive);
        }

        #[test]
        fn prop_triangle_inequality(seed in any::<u64>(), len in 1usize..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = BinaryCode::random(len, &mut rng);
            let b = BinaryCode::random(len, &mut rng);
            let c = BinaryCode::random(len, &mut rng);
            prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
        }

        #[test]
        fn prop_flip_changes_distance_by_one(seed in any::<u64>(), len in 1usize..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = BinaryCode::random(len, &mut rng);
            let b = BinaryCode::random(len, &mut rng);
            let i = (seed as usize) % len;
            let d = a.hamming(&b);
            let d2 = a.with_flipped(i).hamming(&b);
            prop_assert_eq!(d.abs_diff(d2), 1);
        }

        #[test]
        fn prop_extract_matches_bits(seed in any::<u64>(), len in 64usize..300) {
            let mut rng = StdRng::seed_from_u64(seed);
            let c = BinaryCode::random(len, &mut rng);
            let width = 1 + (seed as usize) % 64;
            let start = (seed as usize / 64) % (len.saturating_sub(width).max(1));
            if start + width <= len {
                let v = c.extract(start, width);
                for j in 0..width {
                    let bit = (v >> (width - 1 - j)) & 1 == 1;
                    prop_assert_eq!(bit, c.get(start + j));
                }
            }
        }
    }
}
