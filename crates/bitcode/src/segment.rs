//! Fixed-width segmentation of binary codes.
//!
//! Four of the indexes in this suite carve codes into contiguous segments:
//!
//! * the **Static HA-Index** shares equal segments at the same offset as
//!   graph vertices;
//! * **Manku's multi-hash-table** method keys each table on one segment
//!   (if `hamming(a,b) <= h` and there are `h+1` segments, at least one
//!   segment matches exactly — the pigeonhole filter);
//! * **HEngine** relaxes that to segments within distance 1, halving the
//!   number of tables needed;
//! * **MIH** generalizes to segments within distance `⌊h/m⌋` (+1 on the
//!   leading `h mod m` segments), probed by neighborhood enumeration
//!   (see [`crate::chunk`]).
//!
//! A [`Segmentation`] precomputes the offsets/widths once so hot query paths
//! only do `extract` calls.

use crate::BinaryCode;

/// A partition of `[0, code_len)` into contiguous segments.
///
/// Widths are balanced: when `code_len` is not divisible by the segment
/// count, the first `code_len % count` segments get one extra bit, mirroring
/// how the reference implementations split codes. Any `(code_len, count)`
/// pair with `1 <= count <= code_len` is a valid split — segments wider
/// than 64 bits are allowed (e.g. 512 bits / 5 segments → 103-bit leading
/// segments); only the `u64`-returning [`Segmentation::extract`] is
/// restricted to ≤ 64-bit segments, and [`Segmentation::extract_words`]
/// covers the wide case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segmentation {
    code_len: usize,
    bounds: Vec<(usize, usize)>, // (start, width)
}

impl Segmentation {
    /// Splits a `code_len`-bit code into `count` balanced segments, the
    /// remainder bits landing in the leading segments.
    ///
    /// # Panics
    /// If `count` is 0 or exceeds `code_len`.
    pub fn new(code_len: usize, count: usize) -> Self {
        assert!(count >= 1, "segment count must be >= 1");
        assert!(count <= code_len, "more segments than bits");
        let base = code_len / count;
        let extra = code_len % count;
        let mut bounds = Vec::with_capacity(count);
        let mut start = 0;
        for i in 0..count {
            let width = base + usize::from(i < extra);
            bounds.push((start, width));
            start += width;
        }
        debug_assert_eq!(start, code_len);
        Segmentation { code_len, bounds }
    }

    /// Splits into segments of (at most) `width` bits each; the final
    /// segment may be narrower. This is the Static HA-Index's
    /// "static bit segmentation" with fixed segment size.
    pub fn with_width(code_len: usize, width: usize) -> Self {
        assert!((1..=64).contains(&width), "segment width must be 1..=64");
        let mut bounds = Vec::with_capacity(code_len.div_ceil(width));
        let mut start = 0;
        while start < code_len {
            let w = width.min(code_len - start);
            bounds.push((start, w));
            start += w;
        }
        Segmentation { code_len, bounds }
    }

    /// Number of segments.
    pub fn count(&self) -> usize {
        self.bounds.len()
    }

    /// Code length this segmentation applies to.
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// `(start, width)` of segment `i`.
    pub fn bounds(&self, i: usize) -> (usize, usize) {
        self.bounds[i]
    }

    /// Width of the widest segment. Callers keying segments by `u64`
    /// (every hash-table index in this suite) must check this is ≤ 64 —
    /// and should reject wider configurations loudly rather than silently
    /// adjusting the segment count.
    pub fn max_width(&self) -> usize {
        self.bounds.iter().map(|&(_, w)| w).max().unwrap_or(0)
    }

    /// Extracts segment `i` of `code` as an integer (MSB-first).
    ///
    /// # Panics
    /// If segment `i` is wider than 64 bits — use
    /// [`Segmentation::extract_words`] for wide segments.
    #[inline]
    pub fn extract(&self, code: &BinaryCode, i: usize) -> u64 {
        let (start, width) = self.bounds[i];
        code.extract(start, width)
    }

    /// Extracts segment `i` of `code` as MSB-first 64-bit words (the last
    /// word holding the tail bits in its low positions), supporting
    /// segments of any width. For segments ≤ 64 bits the single word
    /// equals [`Segmentation::extract`].
    pub fn extract_words(&self, code: &BinaryCode, i: usize) -> Vec<u64> {
        let (start, width) = self.bounds[i];
        let mut out = Vec::with_capacity(width.div_ceil(64));
        let mut off = 0;
        while off < width {
            let w = (width - off).min(64);
            out.push(code.extract(start + off, w));
            off += w;
        }
        out
    }

    /// Extracts every segment of `code`.
    pub fn extract_all(&self, code: &BinaryCode) -> Vec<u64> {
        (0..self.count()).map(|i| self.extract(code, i)).collect()
    }

    /// Hamming distance between `query`'s segment `i` and a stored segment
    /// value.
    #[inline]
    pub fn segment_distance(&self, query: &BinaryCode, i: usize, stored: u64) -> u32 {
        (self.extract(query, i) ^ stored).count_ones()
    }

    /// All values within Hamming distance 1 of `value` inside a
    /// `width`-bit segment — `value` itself followed by its `width`
    /// one-bit variants. Used by HEngine's query expansion.
    pub fn one_bit_variants(value: u64, width: usize) -> impl Iterator<Item = u64> {
        debug_assert!((1..=64).contains(&width));
        std::iter::once(value).chain((0..width).map(move |b| value ^ (1u64 << b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn balanced_split() {
        let s = Segmentation::new(9, 3);
        assert_eq!(s.count(), 3);
        assert_eq!(s.bounds(0), (0, 3));
        assert_eq!(s.bounds(1), (3, 3));
        assert_eq!(s.bounds(2), (6, 3));
    }

    #[test]
    fn uneven_split_front_loads_extra_bits() {
        let s = Segmentation::new(10, 3);
        assert_eq!(s.bounds(0), (0, 4));
        assert_eq!(s.bounds(1), (4, 3));
        assert_eq!(s.bounds(2), (7, 3));
    }

    #[test]
    fn with_width_covers_whole_code() {
        let s = Segmentation::with_width(9, 3);
        assert_eq!(s.count(), 3);
        let s = Segmentation::with_width(10, 4);
        assert_eq!(s.count(), 3);
        assert_eq!(s.bounds(2), (8, 2));
    }

    #[test]
    fn extract_paper_example() {
        // "the binary code for tuple t2 is divided into three segments,
        //  '011', '001' and '100'" (§4.3).
        let t2: BinaryCode = "011001100".parse().unwrap();
        let s = Segmentation::new(9, 3);
        assert_eq!(s.extract(&t2, 0), 0b011);
        assert_eq!(s.extract(&t2, 1), 0b001);
        assert_eq!(s.extract(&t2, 2), 0b100);
        assert_eq!(s.extract_all(&t2), vec![0b011, 0b001, 0b100]);
    }

    #[test]
    fn one_bit_variants_count_and_distance() {
        let vs: Vec<u64> = Segmentation::one_bit_variants(0b1010, 4).collect();
        assert_eq!(vs.len(), 5);
        assert_eq!(vs[0], 0b1010);
        for v in &vs[1..] {
            assert_eq!((v ^ 0b1010u64).count_ones(), 1);
        }
        // All distinct.
        let set: std::collections::HashSet<_> = vs.iter().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    #[should_panic(expected = "more segments than bits")]
    fn too_many_segments_panics() {
        Segmentation::new(4, 5);
    }

    /// Every (bits, m) pair up to 512 bits / 8 segments: the split must be
    /// exhaustive, contiguous, balanced to within one bit, and the
    /// remainder bits must land in the *leading* segments. This is the
    /// regression for the historical ≤64-bit-segment restriction, which
    /// rejected splits like 512/5 outright and pushed callers into
    /// silently raising their chunk counts.
    #[test]
    fn every_split_up_to_512_by_8_is_balanced_and_front_loaded() {
        for bits in 1usize..=512 {
            for m in 1..=8usize.min(bits) {
                let s = Segmentation::new(bits, m);
                assert_eq!(s.count(), m, "bits={bits} m={m}");
                assert_eq!(s.code_len(), bits);
                let base = bits / m;
                let extra = bits % m;
                let mut start = 0;
                for i in 0..m {
                    let (st, w) = s.bounds(i);
                    assert_eq!(st, start, "bits={bits} m={m} seg={i} start");
                    assert_eq!(
                        w,
                        base + usize::from(i < extra),
                        "bits={bits} m={m} seg={i}: remainder must front-load"
                    );
                    start += w;
                }
                assert_eq!(start, bits, "bits={bits} m={m}: widths must sum to bits");
                assert_eq!(s.max_width(), base + usize::from(extra > 0));
            }
        }
    }

    #[test]
    fn wide_segments_extract_via_words() {
        // 512 / 5 → widths 103,103,102,102,102; extract() would panic,
        // extract_words() must reproduce the exact bits.
        let s = Segmentation::new(512, 5);
        assert_eq!(s.max_width(), 103);
        let mut rng = StdRng::seed_from_u64(99);
        let code = BinaryCode::random(512, &mut rng);
        for i in 0..5 {
            let (start, width) = s.bounds(i);
            let words = s.extract_words(&code, i);
            assert_eq!(words.len(), width.div_ceil(64));
            // Recombine word-extracted bits and compare bit-by-bit.
            let mut off = 0;
            for w in &words {
                let chunk = (width - off).min(64);
                for b in 0..chunk {
                    let want = code.get(start + off + b);
                    let got = (w >> (chunk - 1 - b)) & 1 == 1;
                    assert_eq!(got, want, "seg={i} bit={}", off + b);
                }
                off += chunk;
            }
        }
        // Narrow segments: extract_words is a one-word extract.
        let narrow = Segmentation::new(96, 3);
        let c96 = BinaryCode::random(96, &mut rng);
        for i in 0..3 {
            assert_eq!(narrow.extract_words(&c96, i), vec![narrow.extract(&c96, i)]);
        }
    }

    proptest! {
        #[test]
        fn prop_segments_partition_the_code(
            seed in any::<u64>(), len in 2usize..300, count in 1usize..16
        ) {
            let count = count.min(len);
            let s = Segmentation::new(len, count);
            // Coverage + disjointness.
            let mut covered = vec![false; len];
            for i in 0..s.count() {
                let (start, width) = s.bounds(i);
                for (b, cell) in covered.iter_mut().enumerate().skip(start).take(width) {
                    prop_assert!(!*cell, "overlap at {b}");
                    *cell = true;
                }
            }
            prop_assert!(covered.iter().all(|&c| c));
            // Segment distances sum to the full distance — via
            // extract_words, so wide segments (len/count > 64) are
            // exercised too.
            let mut rng = StdRng::seed_from_u64(seed);
            let a = BinaryCode::random(len, &mut rng);
            let b = BinaryCode::random(len, &mut rng);
            let total: u32 = (0..s.count())
                .map(|i| {
                    s.extract_words(&a, i)
                        .iter()
                        .zip(s.extract_words(&b, i))
                        .map(|(x, y)| (x ^ y).count_ones())
                        .sum::<u32>()
                })
                .sum();
            prop_assert_eq!(total, a.hamming(&b));
        }
    }
}
