//! Portable software-prefetch hints for the traversal hot paths.
//!
//! The frozen-frontier walk (`ha-store`'s `FlatStoreView`) and the MIH
//! candidate-verification loop both know *exactly* which group planes or
//! code rows they will touch a few iterations ahead of time, but the
//! addresses hop around the arrays in data-dependent order the hardware
//! prefetcher cannot learn. A one-instruction prefetch hint issued a
//! configurable distance ahead overlaps that miss latency with the
//! current group's popcount sweep.
//!
//! [`prefetch_read`] lowers to `_mm_prefetch(…, _MM_HINT_T0)` on x86-64,
//! `prfm pldl1keep` on aarch64, and a no-op everywhere else. It is a
//! *hint* in the strictest sense: it never faults (both instructions
//! ignore invalid addresses), never writes, and has zero effect on any
//! computed value — which is why the equivalence suites can prove the
//! prefetched paths byte-identical to the plain ones.
//!
//! ```
//! use ha_bitcode::prefetch::{prefetch_index, PREFETCH_DISTANCE};
//!
//! let planes = vec![0u64; 1024];
//! // Hint the line we will sweep a few groups from now; out-of-range
//! // indexes are simply ignored.
//! prefetch_index(&planes, 512);
//! prefetch_index(&planes, 1 << 40);
//! let _ = PREFETCH_DISTANCE;
//! ```

/// Default look-ahead distance, in frontier entries (or candidate rows),
/// that the traversal layers hint at. Far enough that the line arrives
/// before the sweep reaches it, near enough that it is still resident
/// when it does; `docs/KERNELS.md` has the tuning notes.
pub const PREFETCH_DISTANCE: usize = 4;

/// Hints that the cache line holding `*p` will be read soon.
///
/// Safe for any pointer value: prefetch instructions ignore faulting
/// addresses by architecture definition, and the fallback does nothing.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint; it performs no load and ignores
    // invalid addresses (Intel SDM vol. 2B, PREFETCHh).
    unsafe {
        core::arch::x86_64::_mm_prefetch(p.cast::<i8>(), core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM PLDL1KEEP is a hint; it cannot generate a memory
    // fault (Arm ARM C6.2.251).
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) p,
            options(nostack, preserves_flags)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// Hints the element `slice[index]`; out-of-range indexes are ignored,
/// so callers can blindly hint `i + distance` near the end of a sweep.
#[inline(always)]
pub fn prefetch_index<T>(slice: &[T], index: usize) {
    if let Some(r) = slice.get(index) {
        prefetch_read(r as *const T);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_pure_hint() {
        // No observable effect, no crash — in or out of range, empty or
        // not. (The *performance* effect is pinned by the `par`
        // experiment; correctness-wise a prefetch must be invisible.)
        let data: Vec<u64> = (0..256).collect();
        prefetch_read(data.as_ptr());
        prefetch_index(&data, 0);
        prefetch_index(&data, 255);
        prefetch_index(&data, 256);
        prefetch_index(&data, usize::MAX);
        prefetch_index::<u64>(&[], 0);
        assert_eq!(data[255], 255);
    }
}
