//! A small dense row-major matrix — just enough linear algebra for PCA.
//!
//! Deliberately minimal: the only consumers are the Jacobi eigensolver in
//! [`crate::pca`] and projection in [`crate::SpectralHasher`]. Pulling in a
//! full linear-algebra crate for a d×d covariance (d ≤ 512 in every
//! experiment) would be the heavier choice.

use std::fmt;

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row-major data.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` out as a vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// If `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams over `rhs` rows for cache friendliness.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row =
                    &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|r| dot(self.row(r), v))
            .collect()
    }

    /// Column means of a data matrix (rows = samples).
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (m, &x) in means.iter_mut().zip(self.row(r)) {
                *m += x;
            }
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Sample covariance matrix of a data matrix (rows = samples,
    /// divisor `n - 1`; falls back to `n` for a single sample).
    pub fn covariance(&self) -> Matrix {
        let means = self.col_means();
        let d = self.cols;
        let mut cov = Matrix::zeros(d, d);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..d {
                let di = row[i] - means[i];
                if di == 0.0 {
                    continue;
                }
                let cov_row = &mut cov.data[i * d..(i + 1) * d];
                for j in i..d {
                    cov_row[j] += di * (row[j] - means[j]);
                }
            }
        }
        let denom = if self.rows > 1 { self.rows - 1 } else { 1 } as f64;
        for i in 0..d {
            for j in i..d {
                let v = cov[(i, j)] / denom;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        cov
    }

    /// Maximum absolute off-diagonal element (Jacobi convergence check).
    pub fn max_off_diagonal(&self) -> f64 {
        assert_eq!(self.rows, self.cols);
        let mut max = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    max = max.max(self[(i, j)].abs());
                }
            }
        }
        max
    }
}

/// Dot product of equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i2 = Matrix::identity(2);
        let i3 = Matrix::identity(3);
        assert_eq!(i2.matmul(&a), a);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.0]);
        let v = vec![3.0, 4.0, 5.0];
        assert_eq!(a.matvec(&v), vec![-2.0, 10.0]);
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        // y = 2x → cov = [[var(x), 2var(x)], [2var(x), 4var(x)]].
        let data = Matrix::from_rows(4, 2, vec![
            1.0, 2.0, //
            2.0, 4.0, //
            3.0, 6.0, //
            4.0, 8.0,
        ]);
        let cov = data.covariance();
        let var_x = cov[(0, 0)];
        assert!((var_x - 5.0 / 3.0).abs() < 1e-12);
        assert!((cov[(0, 1)] - 2.0 * var_x).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0 * var_x).abs() < 1e-12);
        assert_eq!(cov[(0, 1)], cov[(1, 0)]);
    }

    #[test]
    fn col_means() {
        let data = Matrix::from_rows(3, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        assert_eq!(data.col_means(), vec![2.0, 20.0]);
    }

    #[test]
    fn max_off_diagonal_ignores_diagonal() {
        let m = Matrix::from_rows(2, 2, vec![100.0, -3.0, 2.0, 50.0]);
        assert_eq!(m.max_off_diagonal(), 3.0);
    }
}
