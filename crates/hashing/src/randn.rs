//! Gaussian sampling helpers (Box–Muller), shared by SimHash, p-stable LSH,
//! and the dataset generators — kept in-house so the workspace needs no
//! `rand_distr` dependency.

use rand::Rng;

/// One sample from the standard normal distribution N(0, 1).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; resample u1 to avoid ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One sample from N(mean, std²).
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Fills a vector with `n` standard-normal samples.
pub fn standard_normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| standard_normal(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 50_000;
        let samples = standard_normal_vec(&mut rng, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn shifted_normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "variance {var}");
    }
}
