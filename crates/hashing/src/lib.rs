//! Learned similarity hash functions: ℝᵈ → {0,1}ᴸ.
//!
//! The paper's pipeline (§1, §6) first maps every high-dimensional tuple to
//! a binary code with a *similarity-preserving* hash function and then runs
//! all queries in Hamming space. The index never looks inside the hash, so
//! this crate exposes one trait, [`SimilarityHasher`], and two
//! implementations:
//!
//! * [`SpectralHasher`] — the paper's choice ("we choose the
//!   state-of-the-art Spectral Hashing \[2\] as the hash function"). Our
//!   implementation follows Weiss et al.'s recipe: PCA the (sampled) data,
//!   pick the `L` smallest analytical eigenfunction frequencies across
//!   principal directions, and threshold the corresponding sinusoids.
//!   PCA is computed with an in-house Jacobi eigensolver ([`pca`],
//!   [`matrix`]) — no external linear-algebra dependency.
//! * [`SimHasher`] — Charikar's random-hyperplane hash (reference \[5\] of
//!   the paper), the classical data-independent alternative: bit `i` is the
//!   sign of a random projection, and the Hamming distance estimates the
//!   angle between vectors.
//!
//! ```
//! use ha_hashing::{SimHasher, SimilarityHasher};
//!
//! let hasher = SimHasher::new(64, 8, 42); // 64-bit codes over 8-d data
//! let a = hasher.hash(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
//! let close = hasher.hash(&[1.1, 2.0, 3.1, 4.0, 5.0, 6.1, 7.0, 8.0]);
//! let far = hasher.hash(&[-5.0, 3.0, -2.0, 8.0, -1.0, 0.5, -4.0, 2.0]);
//! assert!(a.hamming(&close) < a.hamming(&far));
//! ```

pub mod matrix;
pub mod pca;
pub mod randn;
mod simhash;
mod spectral;

pub use matrix::Matrix;
pub use pca::Pca;
pub use simhash::SimHasher;
pub use spectral::SpectralHasher;

use ha_bitcode::BinaryCode;

/// A learned (or random) similarity-preserving hash function.
///
/// Implementations must be deterministic after construction: hashing the
/// same vector twice yields the same code, so codes can be recomputed on
/// any MapReduce worker that received the hasher via the distributed cache.
pub trait SimilarityHasher: Send + Sync {
    /// Length `L` of produced codes, in bits.
    fn code_len(&self) -> usize;

    /// Input dimensionality `d` this hasher expects.
    fn dim(&self) -> usize;

    /// Maps one vector to its binary code.
    ///
    /// # Panics
    /// If `v.len() != self.dim()`.
    fn hash(&self, v: &[f64]) -> BinaryCode;

    /// Maps a batch of vectors; the default just loops.
    fn hash_all(&self, data: &[Vec<f64>]) -> Vec<BinaryCode> {
        data.iter().map(|v| self.hash(v)).collect()
    }
}
