//! Spectral Hashing (Weiss, Torralba, Fergus — NIPS 2008).
//!
//! The data-dependent hash function used throughout the paper's
//! evaluation. The out-of-sample recipe (for a uniform-box approximation of
//! the data distribution):
//!
//! 1. PCA the training sample down to `k` directions.
//! 2. For each PCA direction `j` with projected data range `[a_j, b_j]`,
//!    the one-dimensional Laplacian eigenfunctions are
//!    `Φ_m(x) = sin(π/2 + m·π/(b_j − a_j)·(x − a_j))` with analytical
//!    eigenvalue decreasing in the frequency `ω = m·π/(b_j − a_j)`.
//! 3. Pick the `L` (code length) smallest frequencies across all
//!    `(direction, mode)` pairs — wide-spread directions contribute several
//!    low-frequency modes.
//! 4. Bit `i` of a code is `sign(Φ_{m_i}(proj_{j_i}(x)))`.
//!
//! The resulting codes are balanced (each sinusoid crosses zero across the
//! data range) and nearby points in the PCA metric receive nearby codes —
//! the property the Hamming-threshold kNN approximation of §2/§6.1.4
//! depends on.

use ha_bitcode::BinaryCode;

use crate::matrix::Matrix;
use crate::pca::Pca;
use crate::SimilarityHasher;

/// One selected eigenfunction: a PCA direction plus a sinusoid mode.
#[derive(Clone, Debug)]
struct Mode {
    /// Index of the PCA direction.
    direction: usize,
    /// Frequency ω = m·π/(b − a).
    omega: f64,
    /// Lower end of the direction's projected range.
    lo: f64,
}

/// Spectral Hashing model: fit once on a sample, then hash any vector.
#[derive(Clone, Debug)]
pub struct SpectralHasher {
    pca: Pca,
    modes: Vec<Mode>,
}

impl SpectralHasher {
    /// Fits a spectral hasher producing `code_len`-bit codes from training
    /// `data` (rows = samples). At most `max_pca` principal directions are
    /// retained (the usual setting is `max_pca = code_len`).
    ///
    /// # Panics
    /// If `data` has fewer than 2 rows, or `code_len == 0`.
    pub fn fit(data: &Matrix, code_len: usize, max_pca: usize) -> Self {
        assert!(data.rows() >= 2, "need at least 2 training samples");
        assert!(code_len >= 1, "code length must be >= 1");
        let k = max_pca.clamp(1, data.cols()).min(code_len.max(1));
        let pca = Pca::fit(data, k);

        // Projected ranges per direction.
        let projected = pca.project_all(data);
        let mut ranges = Vec::with_capacity(k);
        for j in 0..k {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for r in 0..projected.rows() {
                let v = projected[(r, j)];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            // Degenerate (constant) directions get a tiny synthetic range so
            // their modes sort last and are effectively never selected
            // unless nothing else is available.
            if hi <= lo {
                hi = lo + f64::EPSILON.max(lo.abs() * 1e-12);
            }
            ranges.push((lo, hi));
        }

        // Enumerate candidate modes: for each direction, modes m = 1..=L
        // (no direction can contribute more than L useful bits).
        let mut candidates: Vec<Mode> = Vec::with_capacity(k * code_len);
        for (j, &(lo, hi)) in ranges.iter().enumerate() {
            let width = hi - lo;
            for m in 1..=code_len {
                candidates.push(Mode {
                    direction: j,
                    omega: m as f64 * std::f64::consts::PI / width,
                    lo,
                });
            }
        }
        // Smallest frequency = largest analytical eigenvalue.
        candidates.sort_by(|a, b| a.omega.total_cmp(&b.omega));
        candidates.truncate(code_len);

        SpectralHasher {
            pca,
            modes: candidates,
        }
    }

    /// Convenience: fit from a slice of vectors.
    pub fn fit_vectors(data: &[Vec<f64>], code_len: usize, max_pca: usize) -> Self {
        assert!(!data.is_empty(), "empty training set");
        let dim = data[0].len();
        let flat: Vec<f64> = data.iter().flat_map(|v| {
            assert_eq!(v.len(), dim, "ragged training data");
            v.iter().copied()
        }).collect();
        let m = Matrix::from_rows(data.len(), dim, flat);
        Self::fit(&m, code_len, max_pca)
    }

    /// The number of PCA directions retained by the model.
    pub fn pca_directions(&self) -> usize {
        self.pca.k()
    }

    /// Approximate serialized size in bytes — what shipping the learned
    /// hash function through a distributed cache costs: the PCA mean and
    /// component matrix plus one (direction, ω, lo) triple per bit.
    pub fn approx_bytes(&self) -> usize {
        let pca = (self.pca.k() * self.pca.dim() + self.pca.dim()) * 8;
        let modes = self.modes.len() * (4 + 8 + 8);
        pca + modes
    }
}

impl SimilarityHasher for SpectralHasher {
    fn code_len(&self) -> usize {
        self.modes.len()
    }

    fn dim(&self) -> usize {
        self.pca.dim()
    }

    fn hash(&self, v: &[f64]) -> BinaryCode {
        let proj = self.pca.project(v);
        let mut code = BinaryCode::zero(self.modes.len());
        for (i, mode) in self.modes.iter().enumerate() {
            let x = proj[mode.direction] - mode.lo;
            let phase = std::f64::consts::FRAC_PI_2 + mode.omega * x;
            if phase.sin() >= 0.0 {
                code.set(i, true);
            }
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Clustered toy data: `clusters` Gaussian blobs in `dim` dimensions.
    fn blobs(
        rng: &mut StdRng,
        n_per: usize,
        clusters: usize,
        dim: usize,
        spread: f64,
    ) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centres: Vec<Vec<f64>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect();
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for (ci, centre) in centres.iter().enumerate() {
            for _ in 0..n_per {
                let p: Vec<f64> = centre
                    .iter()
                    .map(|&c| c + rng.gen_range(-spread..spread))
                    .collect();
                points.push(p);
                labels.push(ci);
            }
        }
        (points, labels)
    }

    #[test]
    fn code_len_and_dim_reported() {
        let mut rng = StdRng::seed_from_u64(3);
        let (data, _) = blobs(&mut rng, 50, 3, 8, 0.5);
        let h = SpectralHasher::fit_vectors(&data, 32, 32);
        assert_eq!(h.code_len(), 32);
        assert_eq!(h.dim(), 8);
        assert!(h.pca_directions() <= 8);
    }

    #[test]
    fn deterministic_hashing() {
        let mut rng = StdRng::seed_from_u64(3);
        let (data, _) = blobs(&mut rng, 40, 2, 6, 0.5);
        let h = SpectralHasher::fit_vectors(&data, 16, 16);
        assert_eq!(h.hash(&data[0]), h.hash(&data[0]));
    }

    #[test]
    fn same_cluster_codes_are_closer_than_cross_cluster() {
        let mut rng = StdRng::seed_from_u64(17);
        let (data, labels) = blobs(&mut rng, 100, 4, 16, 0.3);
        let h = SpectralHasher::fit_vectors(&data, 32, 32);
        let codes = h.hash_all(&data);

        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in (0..data.len()).step_by(7) {
            for j in (i + 1..data.len()).step_by(11) {
                let d = codes[i].hamming(&codes[j]) as f64;
                if labels[i] == labels[j] {
                    intra.push(d);
                } else {
                    inter.push(d);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&intra) < mean(&inter) * 0.6,
            "intra {} should be well below inter {}",
            mean(&intra),
            mean(&inter)
        );
    }

    #[test]
    fn bits_are_roughly_balanced() {
        // Each selected sinusoid crosses zero across the data range, so no
        // bit should be constant over the training set.
        let mut rng = StdRng::seed_from_u64(23);
        let (data, _) = blobs(&mut rng, 150, 5, 12, 1.0);
        let h = SpectralHasher::fit_vectors(&data, 24, 24);
        let codes = h.hash_all(&data);
        for bit in 0..24 {
            let ones = codes.iter().filter(|c| c.get(bit)).count();
            let frac = ones as f64 / codes.len() as f64;
            assert!(
                (0.02..=0.98).contains(&frac),
                "bit {bit} is ~constant ({frac})"
            );
        }
    }

    #[test]
    fn wide_directions_contribute_multiple_modes() {
        // One dominant direction (huge variance) should supply several of
        // the selected low-frequency modes.
        let mut rng = StdRng::seed_from_u64(8);
        let data: Vec<Vec<f64>> = (0..300)
            .map(|_| {
                vec![
                    rng.gen_range(-100.0..100.0), // dominant
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ]
            })
            .collect();
        let h = SpectralHasher::fit_vectors(&data, 8, 3);
        // Hash two points that differ only along the dominant axis by a lot:
        // many bits must flip (several modes live on that axis).
        let a = h.hash(&[-90.0, 0.0, 0.0]);
        let b = h.hash(&[90.0, 0.0, 0.0]);
        assert!(a.hamming(&b) >= 3, "dominant axis got too few modes");
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_panics() {
        SpectralHasher::fit_vectors(&[], 8, 8);
    }
}
