//! Principal component analysis via the cyclic Jacobi eigenvalue method.
//!
//! Spectral Hashing needs the top principal directions of the (sampled)
//! data. Covariance matrices here are symmetric and small (d ≤ 512), which
//! is exactly the regime where the Jacobi method is simple, numerically
//! robust, and fast enough: each sweep rotates away every off-diagonal
//! element once, and a handful of sweeps reaches machine precision.

use crate::matrix::{dot, Matrix};

/// Convergence threshold on the largest absolute off-diagonal element.
const JACOBI_EPS: f64 = 1e-10;

/// Safety cap on Jacobi sweeps; symmetric matrices converge way earlier.
const MAX_SWEEPS: usize = 64;

/// A fitted PCA model: mean vector plus the top-`k` principal directions.
#[derive(Clone, Debug)]
pub struct Pca {
    mean: Vec<f64>,
    /// `k × d`: row `i` is the i-th principal direction (unit norm),
    /// ordered by descending eigenvalue.
    components: Matrix,
    /// Eigenvalues (variances) matching `components` rows.
    eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fits PCA on `data` (rows = samples, columns = features), keeping the
    /// `k` directions of largest variance.
    ///
    /// # Panics
    /// If `data` has no rows or `k` is zero or exceeds the dimensionality.
    pub fn fit(data: &Matrix, k: usize) -> Self {
        assert!(data.rows() > 0, "PCA needs at least one sample");
        let d = data.cols();
        assert!(k >= 1 && k <= d, "k must be in 1..=d");
        let mean = data.col_means();
        let cov = data.covariance();

        // Full Jacobi costs O(d³) per sweep; when only a thin slice of the
        // spectrum is needed (the common hashing case: k = code length ≪
        // feature dimension), subspace iteration gets the top-k in
        // O(d²·k·iters) — over an order of magnitude faster at d = 512.
        let (eigenvalues, vectors) = if k * 4 <= d {
            subspace_eigen(&cov, k)
        } else {
            jacobi_eigen(&cov)
        };

        // Sort eigenpairs by descending eigenvalue.
        let mut order: Vec<usize> = (0..eigenvalues.len()).collect();
        order.sort_by(|&a, &b| eigenvalues[b].total_cmp(&eigenvalues[a]));

        let mut components = Matrix::zeros(k, d);
        let mut top_values = Vec::with_capacity(k);
        for (row, &idx) in order.iter().take(k).enumerate() {
            top_values.push(eigenvalues[idx]);
            for c in 0..d {
                components[(row, c)] = vectors[(c, idx)];
            }
        }
        Pca {
            mean,
            components,
            eigenvalues: top_values,
        }
    }

    /// Number of retained components.
    pub fn k(&self) -> usize {
        self.components.rows()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.components.cols()
    }

    /// Eigenvalues (descending) of the retained components.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// The i-th principal direction (unit norm).
    pub fn component(&self, i: usize) -> &[f64] {
        self.components.row(i)
    }

    /// Projects a vector onto the retained components (centred).
    pub fn project(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.dim(), "dimension mismatch");
        let centred: Vec<f64> = v.iter().zip(&self.mean).map(|(x, m)| x - m).collect();
        (0..self.k())
            .map(|i| dot(self.component(i), &centred))
            .collect()
    }

    /// Projects every row of a data matrix; returns an `n × k` matrix.
    pub fn project_all(&self, data: &Matrix) -> Matrix {
        let n = data.rows();
        let mut out = Matrix::zeros(n, self.k());
        for r in 0..n {
            for (c, val) in self.project(data.row(r)).into_iter().enumerate() {
                out[(r, c)] = val;
            }
        }
        out
    }
}

/// Full eigendecomposition of a symmetric matrix by the cyclic Jacobi
/// method. Returns `(eigenvalues, eigenvectors)` with eigenvector `i`
/// stored in *column* `i` (unsorted).
pub fn jacobi_eigen(sym: &Matrix) -> (Vec<f64>, Matrix) {
    assert_eq!(sym.rows(), sym.cols(), "matrix must be square");
    let n = sym.rows();
    let mut a = sym.clone();
    let mut v = Matrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        if a.max_off_diagonal() < JACOBI_EPS {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < JACOBI_EPS {
                    continue;
                }
                // Classic Jacobi rotation that zeroes a[(p, q)].
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let eigenvalues = (0..n).map(|i| a[(i, i)]).collect();
    (eigenvalues, v)
}

/// Top-`k` eigenpairs of a symmetric positive-semidefinite matrix by
/// orthogonal (subspace) iteration: repeatedly multiply an orthonormal
/// `d × k` block by the matrix and re-orthonormalize. Returns
/// `(eigenvalues, eigenvectors)` with eigenvector `i` in column `i`
/// (unsorted, like [`jacobi_eigen`]).
pub fn subspace_eigen(sym: &Matrix, k: usize) -> (Vec<f64>, Matrix) {
    assert_eq!(sym.rows(), sym.cols(), "matrix must be square");
    let d = sym.rows();
    assert!(k >= 1 && k <= d);
    // Deterministic full-rank start: unit vectors tilted off-axis so no
    // column is accidentally orthogonal to a leading eigenvector.
    let mut z = Matrix::zeros(d, k);
    for j in 0..k {
        for i in 0..d {
            // A fixed quasi-random pattern (no RNG: PCA must be a pure
            // function of the data).
            let x = ((i * 31 + j * 17 + 7) % 101) as f64 / 101.0 - 0.5;
            z[(i, j)] = x + if i == j { 1.0 } else { 0.0 };
        }
    }
    orthonormalize(&mut z);
    let mut prev_trace = f64::NEG_INFINITY;
    // Hash-quality eigenvectors don't need machine precision: a 1e-7
    // relative stall on the captured variance flips no code bits, and
    // every saved iteration is two d²·k multiplies.
    for _iter in 0..100 {
        // One multiply serves both the iteration step and the convergence
        // check (trace of the Rayleigh block = captured variance).
        let mut az = sym.matmul(&z);
        let trace: f64 = (0..k)
            .map(|j| (0..d).map(|i| z[(i, j)] * az[(i, j)]).sum::<f64>())
            .sum();
        let converged = (trace - prev_trace).abs() <= 1e-7 * trace.abs().max(1e-12);
        prev_trace = trace;
        orthonormalize(&mut az);
        z = az;
        if converged {
            break;
        }
    }
    // Rayleigh quotients as eigenvalue estimates.
    let az = sym.matmul(&z);
    let eigenvalues: Vec<f64> = (0..k)
        .map(|j| (0..d).map(|i| z[(i, j)] * az[(i, j)]).sum::<f64>())
        .collect();
    (eigenvalues, z)
}

/// In-place modified Gram–Schmidt on the columns. Degenerate columns are
/// replaced with fresh unit vectors to keep the block full rank.
fn orthonormalize(m: &mut Matrix) {
    let (d, k) = (m.rows(), m.cols());
    for j in 0..k {
        // Up to two attempts: if the column collapses (it was linearly
        // dependent on its predecessors), re-seed and orthonormalize the
        // fresh vector too.
        for attempt in 0..2 {
            for prev in 0..j {
                let dot_jp: f64 = (0..d).map(|i| m[(i, j)] * m[(i, prev)]).sum();
                for i in 0..d {
                    m[(i, j)] -= dot_jp * m[(i, prev)];
                }
            }
            let norm: f64 = (0..d).map(|i| m[(i, j)] * m[(i, j)]).sum::<f64>().sqrt();
            if norm > 1e-12 {
                for i in 0..d {
                    m[(i, j)] /= norm;
                }
                break;
            }
            assert!(attempt == 0, "orthonormalize: rank collapse persisted");
            for i in 0..d {
                m[(i, j)] = if (i + j) % d == 0 { 1.0 } else { 0.0 };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} != {b} (eps {eps})");
    }

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let m = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (mut vals, _) = jacobi_eigen(&m);
        vals.sort_by(f64::total_cmp);
        assert_close(vals[0], 1.0, 1e-9);
        assert_close(vals[1], 3.0, 1e-9);
    }

    #[test]
    fn jacobi_eigenvectors_satisfy_definition() {
        let m = Matrix::from_rows(3, 3, vec![
            4.0, 1.0, 0.5, //
            1.0, 3.0, 0.2, //
            0.5, 0.2, 2.0,
        ]);
        let (vals, vecs) = jacobi_eigen(&m);
        for (i, val) in vals.iter().enumerate() {
            let x = vecs.col(i);
            let mx = m.matvec(&x);
            for j in 0..3 {
                assert_close(mx[j], val * x[j], 1e-8);
            }
            // Unit norm.
            assert_close(dot(&x, &x), 1.0, 1e-9);
        }
    }

    #[test]
    fn jacobi_handles_already_diagonal() {
        let m = Matrix::from_rows(2, 2, vec![5.0, 0.0, 0.0, -2.0]);
        let (vals, vecs) = jacobi_eigen(&m);
        assert_eq!(vals, vec![5.0, -2.0]);
        assert_eq!(vecs, Matrix::identity(2));
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along the diagonal y = x with small noise: first PC must be
        // ±(1,1)/√2 and explain almost all variance.
        let mut rng = StdRng::seed_from_u64(1);
        let n = 500;
        let mut data = Vec::with_capacity(n * 2);
        for _ in 0..n {
            let t: f64 = rng.gen_range(-10.0..10.0);
            let noise: f64 = rng.gen_range(-0.1..0.1);
            data.push(t + noise);
            data.push(t - noise);
        }
        let m = Matrix::from_rows(n, 2, data);
        let pca = Pca::fit(&m, 2);
        let c0 = pca.component(0);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(
            (c0[0].abs() - s).abs() < 0.01 && (c0[1].abs() - s).abs() < 0.01,
            "first PC {c0:?} should be ±(1,1)/√2"
        );
        assert!(c0[0].signum() == c0[1].signum(), "components aligned");
        assert!(pca.eigenvalues()[0] > 100.0 * pca.eigenvalues()[1]);
    }

    #[test]
    fn pca_projection_is_centred() {
        let m = Matrix::from_rows(4, 2, vec![
            0.0, 10.0, //
            2.0, 10.0, //
            0.0, 12.0, //
            2.0, 12.0,
        ]);
        let pca = Pca::fit(&m, 2);
        // Projections of all samples must average to ~0 per component.
        let proj = pca.project_all(&m);
        for c in 0..2 {
            let mean: f64 = (0..4).map(|r| proj[(r, c)]).sum::<f64>() / 4.0;
            assert_close(mean, 0.0, 1e-12);
        }
    }

    #[test]
    fn pca_preserves_pairwise_distances_under_full_rank() {
        // With k = d, PCA is a rigid rotation: pairwise distances survive.
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20;
        let d = 5;
        let data: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let m = Matrix::from_rows(n, d, data);
        let pca = Pca::fit(&m, d);
        let p = pca.project_all(&m);
        for i in 0..n {
            for j in (i + 1)..n {
                let orig: f64 = (0..d)
                    .map(|c| (m[(i, c)] - m[(j, c)]).powi(2))
                    .sum::<f64>()
                    .sqrt();
                let proj: f64 = (0..d)
                    .map(|c| (p[(i, c)] - p[(j, c)]).powi(2))
                    .sum::<f64>()
                    .sqrt();
                assert_close(orig, proj, 1e-8);
            }
        }
    }

    #[test]
    fn pca_moderate_dimension_converges() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 200;
        let d = 40;
        let data: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let m = Matrix::from_rows(n, d, data);
        let pca = Pca::fit(&m, 8);
        assert_eq!(pca.k(), 8);
        // Eigenvalues descend.
        for w in pca.eigenvalues().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }
}

#[cfg(test)]
mod subspace_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random symmetric PSD matrix with a known dominant structure.
    fn random_psd(d: usize, rng: &mut StdRng) -> Matrix {
        let mut b = Matrix::zeros(d, d);
        for i in 0..d {
            for j in 0..d {
                b[(i, j)] = rng.gen_range(-1.0..1.0);
            }
        }
        b.transpose().matmul(&b)
    }

    #[test]
    fn subspace_matches_jacobi_on_top_eigenpairs() {
        let mut rng = StdRng::seed_from_u64(77);
        let d = 24;
        let k = 4;
        let m = random_psd(d, &mut rng);
        let (sub_vals, sub_vecs) = subspace_eigen(&m, k);
        let (mut jac_vals, _) = jacobi_eigen(&m);
        jac_vals.sort_by(|a, b| b.total_cmp(a));
        let mut sub_sorted = sub_vals.clone();
        sub_sorted.sort_by(|a, b| b.total_cmp(a));
        for i in 0..k {
            let rel = (sub_sorted[i] - jac_vals[i]).abs() / jac_vals[i].abs().max(1e-12);
            assert!(rel < 1e-4, "eigenvalue {i}: {} vs {}", sub_sorted[i], jac_vals[i]);
        }
        // Residual check: ‖A v − λ v‖ small for each returned pair.
        for (j, lambda) in sub_vals.iter().enumerate() {
            let v = sub_vecs.col(j);
            let av = m.matvec(&v);
            let resid: f64 = av
                .iter()
                .zip(&v)
                .map(|(a, x)| (a - lambda * x).powi(2))
                .sum::<f64>()
                .sqrt();
            // Subspace iteration stops at hash-quality precision
            // (1e-7 trace stall), so allow a proportionate residual.
            assert!(resid < 1e-2 * lambda.abs().max(1.0), "residual {resid}");
        }
    }

    #[test]
    fn subspace_columns_orthonormal() {
        let mut rng = StdRng::seed_from_u64(78);
        let m = random_psd(30, &mut rng);
        let (_, vecs) = subspace_eigen(&m, 6);
        for a in 0..6 {
            for b in 0..6 {
                let dot: f64 = (0..30).map(|i| vecs[(i, a)] * vecs[(i, b)]).sum();
                let want = if a == b { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-8, "({a},{b}) dot {dot}");
            }
        }
    }

    #[test]
    fn pca_dispatches_to_subspace_for_thin_k() {
        // d = 64, k = 8 → subspace path; results must still satisfy the
        // PCA contract (descending eigenvalues, unit components).
        let mut rng = StdRng::seed_from_u64(79);
        let n = 300;
        let d = 64;
        let data: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let m = Matrix::from_rows(n, d, data);
        let pca = Pca::fit(&m, 8);
        for w in pca.eigenvalues().windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        for j in 0..8 {
            let c = pca.component(j);
            let norm: f64 = c.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-8);
        }
    }
}
