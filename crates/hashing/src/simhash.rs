//! SimHash — Charikar's random-hyperplane similarity hash.
//!
//! Bit `i` of the code is the sign of the projection of the input onto a
//! random Gaussian direction. Pr[bit differs] = angle(u, v) / π, so Hamming
//! distance between codes is an unbiased estimator of angular distance.
//! This is the data-independent counterpart to Spectral Hashing and the
//! hash family behind the paper's near-duplicate-detection motivation [4,5].

use ha_bitcode::BinaryCode;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::randn::standard_normal;
use crate::SimilarityHasher;

/// Random-hyperplane hasher producing `L`-bit codes for `d`-dimensional
/// input.
#[derive(Clone, Debug)]
pub struct SimHasher {
    code_len: usize,
    dim: usize,
    /// `code_len` hyperplane normals, each of length `dim`, flattened.
    planes: Vec<f64>,
}

impl SimHasher {
    /// Creates a hasher with `code_len` random Gaussian hyperplanes over
    /// `dim`-dimensional vectors, deterministically derived from `seed`.
    pub fn new(code_len: usize, dim: usize, seed: u64) -> Self {
        assert!(code_len >= 1, "code length must be >= 1");
        assert!(dim >= 1, "dimension must be >= 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let planes = (0..code_len * dim)
            .map(|_| standard_normal(&mut rng))
            .collect();
        SimHasher {
            code_len,
            dim,
            planes,
        }
    }

    fn plane(&self, i: usize) -> &[f64] {
        &self.planes[i * self.dim..(i + 1) * self.dim]
    }
}

impl SimilarityHasher for SimHasher {
    fn code_len(&self) -> usize {
        self.code_len
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn hash(&self, v: &[f64]) -> BinaryCode {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        let mut code = BinaryCode::zero(self.code_len);
        for i in 0..self.code_len {
            let s: f64 = self.plane(i).iter().zip(v).map(|(p, x)| p * x).sum();
            if s >= 0.0 {
                code.set(i, true);
            }
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let h1 = SimHasher::new(64, 10, 7);
        let h2 = SimHasher::new(64, 10, 7);
        let v: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(h1.hash(&v), h2.hash(&v));
        let h3 = SimHasher::new(64, 10, 8);
        assert_ne!(h1.hash(&v), h3.hash(&v), "different seed, different code");
    }

    #[test]
    fn scale_invariant() {
        // SimHash depends only on direction: scaling the vector by a
        // positive constant must not change the code.
        let h = SimHasher::new(32, 6, 1);
        let v = vec![0.3, -1.0, 2.0, 0.0, 4.0, -0.5];
        let scaled: Vec<f64> = v.iter().map(|x| x * 37.5).collect();
        assert_eq!(h.hash(&v), h.hash(&scaled));
    }

    #[test]
    fn hamming_tracks_angle() {
        // Vectors at a small angle must collide on most bits; orthogonal
        // vectors on about half; near-opposite on few.
        let h = SimHasher::new(256, 2, 3);
        let a = h.hash(&[1.0, 0.0]);
        let near = h.hash(&[1.0, 0.1]); // ~5.7°
        let orth = h.hash(&[0.0, 1.0]); // 90°
        let opp = h.hash(&[-1.0, -0.05]); // ~177°
        let d_near = a.hamming(&near);
        let d_orth = a.hamming(&orth);
        let d_opp = a.hamming(&opp);
        assert!(d_near < d_orth && d_orth < d_opp, "{d_near} {d_orth} {d_opp}");
        // Expected collision probability θ/π: 90° → half the bits differ.
        assert!((d_orth as i64 - 128).abs() < 40, "d_orth = {d_orth}");
    }

    #[test]
    fn hash_all_matches_individual() {
        let h = SimHasher::new(16, 4, 5);
        let mut rng = StdRng::seed_from_u64(11);
        let data: Vec<Vec<f64>> = (0..20)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let batch = h.hash_all(&data);
        for (v, code) in data.iter().zip(&batch) {
            assert_eq!(&h.hash(v), code);
        }
    }

}
