//! Edge cases every index must handle identically.

use ha_bitcode::BinaryCode;
use ha_core::testkit::random_dataset;
use ha_core::{
    DhaConfig, DynamicHaIndex, HEngine, HammingIndex, HmSearch, LinearScanIndex,
    MultiHashTable, MutableIndex, RadixTreeIndex, StaticHaIndex, TupleId,
};

fn single(code: &str) -> Vec<(BinaryCode, TupleId)> {
    vec![(code.parse().unwrap(), 0)]
}

#[test]
fn empty_dynamic_index_answers_empty() {
    let idx = DynamicHaIndex::empty(16, DhaConfig::default());
    assert!(idx.is_empty());
    assert!(idx.search(&BinaryCode::zero(16), 16).is_empty());
    assert!(idx.search_codes(&BinaryCode::zero(16), 16).is_empty());
}

#[test]
fn single_tuple_everywhere() {
    let data = single("10101010");
    let q_hit: BinaryCode = "10101011".parse().unwrap();
    let q_miss: BinaryCode = "01010101".parse().unwrap();
    let checks: Vec<(&str, Box<dyn HammingIndex>)> = vec![
        ("linear", Box::new(LinearScanIndex::build(data.clone()))),
        ("radix", Box::new(RadixTreeIndex::build(data.clone()))),
        ("sha", Box::new(StaticHaIndex::build(data.clone()))),
        ("dha", Box::new(DynamicHaIndex::build(data.clone()))),
        ("mh", Box::new(MultiHashTable::build(data.clone(), 2))),
        ("hengine", Box::new(HEngine::build(data.clone(), 1))),
        ("hmsearch", Box::new(HmSearch::build(data.clone(), 1))),
    ];
    for (name, idx) in checks {
        assert_eq!(idx.len(), 1, "{name}");
        assert_eq!(idx.search(&q_hit, 1), vec![0], "{name}");
        assert!(idx.search(&q_miss, 1).is_empty(), "{name}");
        // Completeness at the maximum threshold only holds inside each
        // structure's guarantee (the pigeonhole filters stop there).
        if idx.complete_up_to().is_none_or(|g| g >= 8) {
            assert_eq!(idx.search(&q_miss, 8).len(), 1, "{name} at max h");
        }
    }
}

#[test]
fn h_zero_is_exact_lookup() {
    let data = random_dataset(200, 32, 1);
    let dha = DynamicHaIndex::build(data.clone());
    let radix = RadixTreeIndex::build(data.clone());
    for (code, id) in data.iter().step_by(17) {
        assert_eq!(dha.search(code, 0), vec![*id]);
        assert_eq!(radix.search(code, 0), vec![*id]);
    }
}

#[test]
fn h_equal_code_len_returns_all() {
    let data = random_dataset(64, 16, 2);
    for idx in [
        Box::new(DynamicHaIndex::build(data.clone())) as Box<dyn HammingIndex>,
        Box::new(StaticHaIndex::build(data.clone())),
        Box::new(RadixTreeIndex::build(data.clone())),
    ] {
        assert_eq!(idx.search(&BinaryCode::zero(16), 16).len(), 64);
    }
}

#[test]
fn all_identical_codes() {
    let code: BinaryCode = "1111000011110000".parse().unwrap();
    let data: Vec<(BinaryCode, TupleId)> = (0..100).map(|i| (code.clone(), i)).collect();
    let dha = DynamicHaIndex::build(data.clone());
    dha.check_invariants();
    assert_eq!(dha.leaf_count(), 1);
    assert_eq!(dha.search(&code, 0).len(), 100);
    assert!(dha.search(&code.not(), 15).is_empty());
    // Static index: one path.
    let sha = StaticHaIndex::build(data);
    assert_eq!(sha.search(&code, 0).len(), 100);
}

#[test]
#[should_panic(expected = "length mismatch")]
fn query_length_mismatch_panics_dha() {
    let idx = DynamicHaIndex::build(single("1010"));
    let _ = idx.search(&BinaryCode::zero(8), 1);
}

#[test]
#[should_panic(expected = "length mismatch")]
fn insert_length_mismatch_panics_radix() {
    let mut idx = RadixTreeIndex::build(single("1010"));
    idx.insert(BinaryCode::zero(8), 1);
}

#[test]
fn one_bit_codes() {
    let data: Vec<(BinaryCode, TupleId)> = vec![
        ("0".parse().unwrap(), 0),
        ("1".parse().unwrap(), 1),
        ("1".parse().unwrap(), 2),
    ];
    let idx = DynamicHaIndex::build(data.clone());
    idx.check_invariants();
    let zero: BinaryCode = "0".parse().unwrap();
    assert_eq!(idx.search(&zero, 0), vec![0]);
    let mut all = idx.search(&zero, 1);
    all.sort_unstable();
    assert_eq!(all, vec![0, 1, 2]);
}

#[test]
fn window_larger_than_dataset() {
    let data = random_dataset(10, 24, 3);
    let idx = DynamicHaIndex::build_with(
        data.clone(),
        DhaConfig {
            window: 1_000,
            ..DhaConfig::default()
        },
    );
    idx.check_invariants();
    let q = data[0].0.clone();
    assert!(idx.search(&q, 0).contains(&0));
}

#[test]
fn degenerate_window_and_depth_clamped() {
    let data = random_dataset(50, 24, 4);
    // window < 2 and depth 0 get clamped internally.
    let idx = DynamicHaIndex::build_with(
        data.clone(),
        DhaConfig {
            window: 0,
            max_depth: 0,
            ..DhaConfig::default()
        },
    );
    idx.check_invariants();
    assert_eq!(idx.len(), 50);
    let q = data[7].0.clone();
    assert!(idx.search(&q, 0).contains(&7));
}

#[test]
fn delete_last_then_insert_again() {
    let code: BinaryCode = "110011001100".parse().unwrap();
    let mut idx = DynamicHaIndex::build(vec![(code.clone(), 5)]);
    assert!(idx.delete(&code, 5));
    assert!(idx.is_empty());
    idx.insert(code.clone(), 6);
    idx.flush();
    assert_eq!(idx.search(&code, 0), vec![6]);
    idx.check_invariants();
}

#[test]
fn mh_with_more_tables_than_needed() {
    // num_tables close to code_len (1-bit segments).
    let data = random_dataset(64, 16, 5);
    let idx = MultiHashTable::build(data.clone(), 16);
    assert_eq!(idx.complete_up_to(), Some(15));
    for (c, id) in data.iter().take(5) {
        assert!(idx.search(c, 3).contains(id));
    }
}
