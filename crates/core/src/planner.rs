//! Adaptive query planner: route each Hamming-select to the cheapest
//! exact backend.
//!
//! `BENCH_flat.json` already showed no single layout wins everywhere —
//! HA-Flat is fastest on clustered narrow codes, while sparse wide codes
//! favour chunked probing ([`crate::MihIndex`]) and tiny datasets are
//! fastest to just scan. This module turns that observation into a
//! routing decision: a [`CostModel`] (constants fitted by the `planner`
//! experiment in `ha-bench` and captured in `BENCH_planner.json`)
//! estimates nanoseconds per query for every available [`Backend`] from a
//! [`DataProfile`] — code width, row count, and a sampled *clusteredness*
//! estimate — plus the query threshold, and [`choose`] picks the minimum.
//!
//! Two integration surfaces sit on top:
//!
//! * [`PlannedIndex`] — owns both physical structures (a
//!   [`DynamicHaIndex`] and a [`MihIndex`] over the same rows) and routes
//!   every query; this is what HA-Serve shards hold.
//! * [`DhaRouter`] — borrows a lone `DynamicHaIndex` (the broadcast side
//!   of the distributed join, where building a second structure per task
//!   would be waste) and routes between its arena / flat / implicit-scan
//!   paths only.
//!
//! Every routed entry point returns **canonically sorted** answers (ids
//! ascending; distance pairs by `(id, d)`), so the choice of backend is
//! unobservable in results — the property `tests/planner_decisions.rs`
//! pins down.

use ha_bitcode::chunk::neighborhood_size;
use ha_bitcode::segment::Segmentation;
use ha_bitcode::BinaryCode;

use crate::dynamic::{DhaConfig, DynamicHaIndex, FreezePolicy};
use crate::mih::MihIndex;
use crate::{HammingIndex, MutableIndex, TupleId};

/// The exact search backends the planner can route to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Mutable HA-Index arena BFS (H-Search).
    ArenaBfs,
    /// Frozen CSR/SoA snapshot of the HA-Index.
    HaFlat,
    /// Multi-Index Hashing chunk tables.
    Mih,
    /// Linear scan over flat row storage.
    Linear,
}

impl Backend {
    /// All backends, in the deterministic tie-break order used by
    /// [`choose`] (earlier wins on exactly equal estimates).
    pub const ALL: [Backend; 4] = [Backend::HaFlat, Backend::Mih, Backend::ArenaBfs, Backend::Linear];

    /// Single-letter code used in pinned decision tables (`F`, `M`, `A`, `L`).
    pub fn letter(self) -> char {
        match self {
            Backend::ArenaBfs => 'A',
            Backend::HaFlat => 'F',
            Backend::Mih => 'M',
            Backend::Linear => 'L',
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::ArenaBfs => "arena-bfs",
            Backend::HaFlat => "ha-flat",
            Backend::Mih => "mih",
            Backend::Linear => "linear",
        })
    }
}

/// What the planner knows about a dataset when costing a query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DataProfile {
    /// Code width in bits.
    pub bits: usize,
    /// Number of live rows.
    pub n: usize,
    /// Sampled clusteredness in `[0, 1]`: 0 ≈ uniform random codes,
    /// 1 ≈ heavy near-duplicate clustering. See [`estimate_clusteredness`].
    pub clusteredness: f64,
}

/// Clusteredness estimate: mean nearest-neighbour distance over a strided
/// sample of at most 256 codes, normalized against `bits / 2` (the
/// expected pairwise distance of uniform random codes) and inverted —
/// uniform data lands near `1 − 2·E[nn]/bits ≈ 0.2–0.4` depending on
/// width, clustered data (many near-duplicates) approaches 1. Returns 0
/// for fewer than two codes. O(sample²) distance computations, so at most
/// ~32k `hamming` calls regardless of dataset size.
pub fn estimate_clusteredness<'a, I>(codes: I) -> f64
where
    I: IntoIterator<Item = &'a BinaryCode>,
{
    let all: Vec<&BinaryCode> = codes.into_iter().collect();
    if all.len() < 2 {
        return 0.0;
    }
    let bits = all[0].len();
    if bits == 0 {
        return 0.0;
    }
    let stride = all.len().div_ceil(256);
    let sample: Vec<&BinaryCode> = all.iter().step_by(stride).copied().take(256).collect();
    let mut sum = 0.0;
    for (i, a) in sample.iter().enumerate() {
        let mut best = u32::MAX;
        for (j, b) in sample.iter().enumerate() {
            if i != j {
                best = best.min(a.hamming(b));
            }
        }
        sum += f64::from(best);
    }
    let mean_nn = sum / sample.len() as f64;
    (1.0 - mean_nn / (bits as f64 / 2.0)).clamp(0.0, 1.0)
}

/// Per-backend cost estimates in nanoseconds per query.
///
/// The shapes are analytical (rows scanned, BFS work per row and
/// threshold, probe enumerations and expected candidates); the constants
/// are **fitted**, not derived: the `planner` experiment times all four
/// backends across the benchmark grid and the defaults below are tuned
/// until [`choose`] picks the measured winner in every cell
/// (`BENCH_planner.json`). Absolute nanoseconds are therefore
/// machine-specific; the *ratios* are what routing depends on.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Linear scan: ns per row-word compared.
    pub linear_word_ns: f64,
    /// Arena BFS: ns per row per `(h+1)` unit of traversal depth.
    pub arena_row_h_ns: f64,
    /// Flat BFS: ns per row per `(h+1)`, before the sparsity penalty.
    pub flat_row_h_ns: f64,
    /// Multiplier on flat cost as clusteredness falls — the frozen
    /// layout's prefix-sharing advantage evaporates on sparse data.
    pub flat_sparse_penalty: f64,
    /// MIH: ns per enumerated bucket probe.
    pub mih_probe_ns: f64,
    /// MIH: ns per candidate verification, per row-word.
    pub mih_candidate_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            linear_word_ns: 1.6,
            arena_row_h_ns: 0.26,
            flat_row_h_ns: 0.115,
            flat_sparse_penalty: 2.1,
            mih_probe_ns: 42.0,
            mih_candidate_ns: 0.7,
        }
    }
}

impl CostModel {
    fn words(bits: usize) -> f64 {
        bits.div_ceil(64) as f64
    }

    /// Estimated ns for a linear scan.
    pub fn linear_cost(&self, p: &DataProfile) -> f64 {
        self.linear_word_ns * p.n as f64 * Self::words(p.bits)
    }

    /// Estimated ns for the mutable arena's BFS.
    pub fn arena_cost(&self, p: &DataProfile, h: u32) -> f64 {
        self.arena_row_h_ns * p.n as f64 * f64::from(h + 1)
    }

    /// Estimated ns for the frozen flat layout's BFS.
    pub fn flat_cost(&self, p: &DataProfile, h: u32) -> f64 {
        let sparsity = 1.0 + self.flat_sparse_penalty * (1.0 - p.clusteredness);
        self.flat_row_h_ns * p.n as f64 * f64::from(h + 1) * sparsity
    }

    /// [`CostModel::flat_cost`] for a snapshot whose freeze policy laid
    /// `aos_fraction` of its sibling groups out row-major. The sparse
    /// penalty models the SoA stride tax on narrow groups — exactly the
    /// groups the adaptive policy converts to AoS, whose per-sibling
    /// early exit behaves like the arena — so the penalty scales down
    /// with the fraction converted: at `aos_fraction = 1.0` no stride
    /// tax remains. Routers with access to a live snapshot
    /// ([`PlannedIndex`], [`DhaRouter`]) cost the flat backend this
    /// way; the context-free [`choose`] keeps the conservative
    /// all-SoA estimate.
    pub fn flat_cost_adaptive(&self, p: &DataProfile, h: u32, aos_fraction: f64) -> f64 {
        let soa_share = 1.0 - aos_fraction.clamp(0.0, 1.0);
        let sparsity = 1.0 + self.flat_sparse_penalty * (1.0 - p.clusteredness) * soa_share;
        self.flat_row_h_ns * p.n as f64 * f64::from(h + 1) * sparsity
    }

    /// Estimated ns for MIH: exact probe count (the same pigeonhole
    /// budget [`MihIndex::probe_estimate`] computes) plus expected
    /// candidate verifications, assuming per-chunk bucket occupancy
    /// `n / 2^(w·(1−clusteredness))` — clustering concentrates rows into
    /// fewer chunk values, fattening buckets. When the probe enumeration
    /// alone reaches `n`, MIH would take its scan fallback, so the
    /// estimate becomes the linear cost plus 5%.
    pub fn mih_cost(&self, p: &DataProfile, h: u32) -> f64 {
        if p.n == 0 {
            return 0.0;
        }
        let m = MihIndex::auto_chunks(p.bits, p.n);
        let seg = Segmentation::new(p.bits, m);
        let r = h / m as u32;
        let a = h % m as u32;
        let mut probes = 0.0f64;
        let mut candidates = 0.0f64;
        for k in 0..m {
            let radius = if (k as u32) <= a { r } else if r == 0 { continue } else { r - 1 };
            let (_, width) = seg.bounds(k);
            let chunk_probes = neighborhood_size(width as u32, radius) as f64;
            probes += chunk_probes;
            let effective_bits = (width as f64 * (1.0 - p.clusteredness)).min(60.0);
            candidates += chunk_probes * p.n as f64 / effective_bits.exp2();
        }
        if probes >= p.n as f64 {
            return self.linear_cost(p) * 1.05;
        }
        self.mih_probe_ns * probes
            + self.mih_candidate_ns * candidates.min(p.n as f64) * Self::words(p.bits)
    }

    /// Estimated ns for `backend` on this profile and threshold.
    pub fn cost(&self, backend: Backend, p: &DataProfile, h: u32) -> f64 {
        match backend {
            Backend::ArenaBfs => self.arena_cost(p, h),
            Backend::HaFlat => self.flat_cost(p, h),
            Backend::Mih => self.mih_cost(p, h),
            Backend::Linear => self.linear_cost(p),
        }
    }
}

/// Picks the cheapest backend among `available`. Fully deterministic:
/// costs are pure `f64` arithmetic over the inputs, and exact ties go to
/// the backend appearing earliest in [`Backend::ALL`] order. Returns
/// [`Backend::Linear`] when `available` is empty (a scan needs no
/// structure).
pub fn choose(model: &CostModel, profile: &DataProfile, h: u32, available: &[Backend]) -> Backend {
    choose_with_aos(model, profile, h, available, 0.0)
}

/// [`choose`] with snapshot-layout context: the flat backend is costed
/// via [`CostModel::flat_cost_adaptive`] at the given AoS group
/// fraction (`FlatHaIndex::aos_fraction`). At `aos_fraction = 0.0` this
/// is exactly [`choose`] — all-SoA is the conservative baseline the
/// pinned decision table is built on.
pub fn choose_with_aos(
    model: &CostModel,
    profile: &DataProfile,
    h: u32,
    available: &[Backend],
    aos_fraction: f64,
) -> Backend {
    let mut best = Backend::Linear;
    let mut best_cost = f64::INFINITY;
    for b in Backend::ALL {
        if !available.contains(&b) {
            continue;
        }
        let c = match b {
            Backend::HaFlat => model.flat_cost_adaptive(profile, h, aos_fraction),
            _ => model.cost(b, profile, h),
        };
        if c < best_cost {
            best = b;
            best_cost = c;
        }
    }
    best
}

/// Configuration for a [`PlannedIndex`].
#[derive(Clone, Debug, Default)]
pub struct PlanConfig {
    /// Configuration of the inner [`DynamicHaIndex`].
    pub dha: DhaConfig,
    /// Explicit MIH chunk count; `None` sizes it from the build-time row
    /// count ([`MihIndex::auto_chunks`]).
    pub mih_chunks: Option<usize>,
    /// Cost model driving routing decisions.
    pub model: CostModel,
    /// Policy every snapshot of this index is frozen under — layout
    /// choice plus the HA-Par execution knobs (kernel, prefetch,
    /// morsel workers).
    pub freeze: FreezePolicy,
}

/// An exact Hamming index that owns every backend and routes per query.
///
/// Both structures index the same rows: the [`DynamicHaIndex`] serves the
/// arena and flat paths, the [`MihIndex`] serves chunked probing and the
/// linear scan (its flat row store doubles as the scan target, so the
/// "four backends" cost two structures, not four). Mutations go to both;
/// [`PlannedIndex::freeze`] refreshes the flat snapshot *and* the
/// clusteredness estimate.
///
/// ```
/// use ha_core::planner::PlannedIndex;
/// use ha_core::{HammingIndex, MutableIndex};
/// use ha_bitcode::BinaryCode;
///
/// let mut index = PlannedIndex::build(
///     16, (0..64u64).map(|i| (BinaryCode::from_u64(i, 16), i)).collect());
/// let q = BinaryCode::from_u64(5, 16);
/// let (backend, hits) = index.search_routed(&q, 1);
/// assert_eq!(hits, vec![1, 4, 5, 7, 13, 21, 37]); // ids ascending, any backend
/// index.insert(BinaryCode::from_u64(999, 16), 999);
/// assert_eq!(index.len(), 65);
/// let _ = backend; // which backend won is a performance detail only
/// ```
#[derive(Clone, Debug)]
pub struct PlannedIndex {
    code_len: usize,
    dha: DynamicHaIndex,
    mih: MihIndex,
    model: CostModel,
    clusteredness: f64,
    freeze: FreezePolicy,
}

impl PlannedIndex {
    /// Builds from `(code, id)` pairs with the default [`PlanConfig`],
    /// freezing the flat snapshot immediately.
    pub fn build(code_len: usize, items: Vec<(BinaryCode, TupleId)>) -> Self {
        Self::build_with(code_len, items, PlanConfig::default())
    }

    /// Builds with explicit configuration.
    pub fn build_with(code_len: usize, items: Vec<(BinaryCode, TupleId)>, cfg: PlanConfig) -> Self {
        let chunks = cfg
            .mih_chunks
            .unwrap_or_else(|| MihIndex::auto_chunks(code_len, items.len()));
        let mut mih = MihIndex::new(code_len, chunks);
        for (code, id) in &items {
            mih.insert(code.clone(), *id);
        }
        let mut dha = if items.is_empty() {
            DynamicHaIndex::empty(code_len, cfg.dha)
        } else {
            DynamicHaIndex::build_with(items, cfg.dha)
        };
        dha.freeze_with(cfg.freeze);
        let clusteredness = estimate_clusteredness(dha.leaf_codes());
        PlannedIndex { code_len, dha, mih, model: cfg.model, clusteredness, freeze: cfg.freeze }
    }

    /// The profile the planner currently costs queries against. The
    /// clusteredness component is sampled at build and refreshed by
    /// [`PlannedIndex::freeze`] — it goes stale (not wrong: only routing,
    /// never answers, depends on it) across unfrozen mutations.
    pub fn profile(&self) -> DataProfile {
        DataProfile {
            bits: self.code_len,
            n: self.mih.len(),
            clusteredness: self.clusteredness,
        }
    }

    /// Backends currently able to answer (the flat path drops out while
    /// the snapshot is stale).
    pub fn available(&self) -> Vec<Backend> {
        let mut avail = vec![Backend::ArenaBfs, Backend::Mih, Backend::Linear];
        if self.dha.flat_is_current() {
            avail.insert(0, Backend::HaFlat);
        }
        avail
    }

    /// The backend [`HammingIndex::search`] would use at threshold `h`.
    /// When a current snapshot exists, its recorded layout mix feeds the
    /// flat estimate ([`CostModel::flat_cost_adaptive`]).
    pub fn backend_for(&self, h: u32) -> Backend {
        let aos = self.dha.flat().map_or(0.0, crate::FlatHaIndex::aos_fraction);
        choose_with_aos(&self.model, &self.profile(), h, &self.available(), aos)
    }

    /// Routed search that also reports which backend answered.
    pub fn search_routed(&self, query: &BinaryCode, h: u32) -> (Backend, Vec<TupleId>) {
        let backend = self.backend_for(h);
        let hits = self
            .search_with_backend(backend, query, h)
            .unwrap_or_else(|| self.mih.scan(query, h));
        (backend, hits)
    }

    /// Forces the query through one specific backend; `None` if that
    /// backend is unavailable (the flat path without a current snapshot).
    /// Answers are canonically sorted, so all `Some` results are equal —
    /// the equivalence `tests/planner_decisions.rs` asserts.
    pub fn search_with_backend(
        &self,
        backend: Backend,
        query: &BinaryCode,
        h: u32,
    ) -> Option<Vec<TupleId>> {
        let mut hits = match backend {
            Backend::HaFlat => self.dha.flat()?.search(query, h),
            Backend::ArenaBfs => self.dha.search_arena(query, h),
            Backend::Mih => return Some(self.mih.search(query, h)),
            Backend::Linear => return Some(self.mih.scan(query, h)),
        };
        hits.sort_unstable();
        Some(hits)
    }

    /// Routed search with exact distances, sorted by `(id, distance)`.
    pub fn search_with_distances(&self, query: &BinaryCode, h: u32) -> Vec<(TupleId, u32)> {
        let mut hits = match self.backend_for(h) {
            Backend::HaFlat | Backend::ArenaBfs => {
                if let Some(f) = self.dha.flat() {
                    f.search_with_distances(query, h)
                } else {
                    self.dha.search_with_distances_arena(query, h)
                }
            }
            Backend::Mih => return self.mih.search_with_distances(query, h),
            Backend::Linear => return self.mih.scan_with_distances(query, h),
        };
        hits.sort_unstable_by_key(|&(id, d)| (id, d));
        hits
    }

    /// Routed batch search: one routing decision for the whole batch
    /// (same profile, same `h`), answers per query in canonical order.
    pub fn batch_search(&self, queries: &[BinaryCode], h: u32) -> Vec<Vec<TupleId>> {
        match self.backend_for(h) {
            Backend::HaFlat | Backend::ArenaBfs => {
                let mut answers = if let Some(f) = self.dha.flat() {
                    f.batch_search(queries, h)
                } else {
                    self.dha.batch_search_arena(queries, h)
                };
                for a in &mut answers {
                    a.sort_unstable();
                }
                answers
            }
            Backend::Mih => self.mih.batch_search(queries, h),
            Backend::Linear => queries.iter().map(|q| self.mih.scan(q, h)).collect(),
        }
    }

    /// Refreshes the flat snapshot (under the configured policy) and the
    /// clusteredness estimate. Idempotent while the epoch is unchanged,
    /// like [`DynamicHaIndex::freeze`].
    pub fn freeze(&mut self) {
        if !self.dha.flat_is_current() {
            self.dha.freeze_with(self.freeze);
        }
        self.clusteredness = estimate_clusteredness(self.dha.leaf_codes());
    }

    /// Epoch of the inner HA-Index (bumped by every mutation) — what the
    /// serving layer keys its result cache on.
    pub fn epoch(&self) -> u64 {
        self.dha.epoch()
    }

    /// The inner HA-Index (read-only).
    pub fn dha(&self) -> &DynamicHaIndex {
        &self.dha
    }

    /// Serializes the frozen flat snapshot into the persistent HA-Store
    /// format, if one is current (`build`/`build_with` freeze, so this is
    /// `Some` unless a mutation has landed since).
    pub fn store_bytes(&self) -> Option<Vec<u8>> {
        self.dha.flat().map(crate::FlatHaIndex::store_bytes)
    }

    /// The inner MIH index (read-only).
    pub fn mih(&self) -> &MihIndex {
        &self.mih
    }

    /// Every stored `(code, id)` pair, via the inner HA-Index.
    pub fn items(&self) -> impl Iterator<Item = (BinaryCode, TupleId)> + '_ {
        self.dha.items()
    }
}

impl HammingIndex for PlannedIndex {
    fn name(&self) -> &'static str {
        "Planned"
    }

    fn len(&self) -> usize {
        self.mih.len()
    }

    fn code_len(&self) -> usize {
        self.code_len
    }

    fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        self.search_routed(query, h).1
    }

    fn memory_bytes(&self) -> usize {
        self.dha.memory_bytes() + self.mih.memory_bytes()
    }
}

impl MutableIndex for PlannedIndex {
    fn insert(&mut self, code: BinaryCode, id: TupleId) {
        self.mih.insert(code.clone(), id);
        self.dha.insert(code, id);
    }

    fn delete(&mut self, code: &BinaryCode, id: TupleId) -> bool {
        let a = self.dha.delete(code, id);
        let b = self.mih.delete(code, id);
        debug_assert_eq!(a, b, "backends must agree on membership");
        a && b
    }
}

/// Routing front for a *borrowed* [`DynamicHaIndex`] — the distributed
/// join broadcasts one index to every reducer, where building a second
/// structure per task would swamp the savings. Only the backends the
/// HA-Index itself embodies are available: the flat snapshot (when
/// current) and the arena BFS.
#[derive(Clone, Debug)]
pub struct DhaRouter<'a> {
    dha: &'a DynamicHaIndex,
    model: CostModel,
    profile: DataProfile,
}

impl<'a> DhaRouter<'a> {
    /// Samples the profile once (clusteredness over the leaf codes) and
    /// routes every subsequent query against it.
    pub fn new(dha: &'a DynamicHaIndex, model: CostModel) -> Self {
        let profile = DataProfile {
            bits: dha.code_len(),
            n: dha.len(),
            clusteredness: estimate_clusteredness(dha.leaf_codes()),
        };
        DhaRouter { dha, model, profile }
    }

    /// The backend queries at threshold `h` are routed to.
    pub fn backend_for(&self, h: u32) -> Backend {
        let mut avail = vec![Backend::ArenaBfs];
        if self.dha.flat_is_current() {
            avail.insert(0, Backend::HaFlat);
        }
        let aos = self.dha.flat().map_or(0.0, crate::FlatHaIndex::aos_fraction);
        choose_with_aos(&self.model, &self.profile, h, &avail, aos)
    }

    /// Routed select, ids ascending.
    pub fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        let mut hits = match (self.backend_for(h), self.dha.flat()) {
            (Backend::HaFlat, Some(f)) => f.search(query, h),
            _ => self.dha.search_arena(query, h),
        };
        hits.sort_unstable();
        hits
    }

    /// Routed code-level select (Option B of the MapReduce join), sorted
    /// by `(code, distance)`.
    pub fn search_codes(&self, query: &BinaryCode, h: u32) -> Vec<(BinaryCode, u32)> {
        let mut hits = match (self.backend_for(h), self.dha.flat()) {
            (Backend::HaFlat, Some(f)) => f.search_codes(query, h),
            _ => self.dha.search_codes_arena(query, h),
        };
        hits.sort_unstable_by(|a, b| a.cmp(b));
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_matches_oracle, clustered_dataset, random_dataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clusteredness_orders_regimes() {
        let uniform64 = random_dataset(800, 64, 1);
        let clustered64 = clustered_dataset(800, 64, 4, 3, 2);
        let uniform512 = random_dataset(800, 512, 3);
        let clustered512 = clustered_dataset(800, 512, 4, 8, 4);
        let rho = |d: &[(BinaryCode, TupleId)]| {
            estimate_clusteredness(d.iter().map(|(c, _)| c))
        };
        let (u64r, c64r) = (rho(&uniform64), rho(&clustered64));
        let (u512r, c512r) = (rho(&uniform512), rho(&clustered512));
        assert!(c64r > u64r + 0.1, "clustered 64-bit ({c64r}) vs uniform ({u64r})");
        assert!(c512r > u512r + 0.1, "clustered 512-bit ({c512r}) vs uniform ({u512r})");
        assert!((0.0..=1.0).contains(&u512r));
        // Degenerate inputs.
        assert_eq!(estimate_clusteredness(std::iter::empty()), 0.0);
        let one = BinaryCode::from_u64(1, 16);
        assert_eq!(estimate_clusteredness(std::iter::once(&one)), 0.0);
    }

    #[test]
    fn choose_is_deterministic_and_respects_availability() {
        let model = CostModel::default();
        let p = DataProfile { bits: 512, n: 6000, clusteredness: 0.2 };
        let full = choose(&model, &p, 3, &Backend::ALL);
        assert_eq!(full, choose(&model, &p, 3, &Backend::ALL), "same inputs, same choice");
        // Remove the winner: the choice must fall back, never pick the
        // unavailable backend.
        let rest: Vec<Backend> = Backend::ALL.iter().copied().filter(|&b| b != full).collect();
        assert_ne!(choose(&model, &p, 3, &rest), full);
        assert_eq!(choose(&model, &p, 3, &[]), Backend::Linear);
    }

    #[test]
    fn cost_model_prefers_mih_on_sparse_wide_and_flat_on_clustered_narrow() {
        let model = CostModel::default();
        let sparse_wide = DataProfile { bits: 512, n: 6000, clusteredness: 0.18 };
        assert_eq!(choose(&model, &sparse_wide, 3, &Backend::ALL), Backend::Mih);
        let clustered_narrow = DataProfile { bits: 64, n: 30_000, clusteredness: 0.75 };
        let pick = choose(&model, &clustered_narrow, 6, &Backend::ALL);
        assert!(
            pick == Backend::HaFlat || pick == Backend::Mih,
            "clustered narrow at h=6 must not scan or BFS the arena (got {pick})"
        );
        // Tiny dataset: scanning wins.
        let tiny = DataProfile { bits: 64, n: 24, clusteredness: 0.3 };
        assert_eq!(choose(&model, &tiny, 30, &Backend::ALL), Backend::Linear);
    }

    #[test]
    fn aos_fraction_discounts_the_flat_sparse_penalty() {
        let model = CostModel::default();
        let p = DataProfile { bits: 512, n: 6000, clusteredness: 0.2 };
        // Zero fraction is exactly the context-free estimate — the
        // invariant that keeps the pinned decision table valid.
        assert_eq!(model.flat_cost_adaptive(&p, 3, 0.0), model.flat_cost(&p, 3));
        assert_eq!(choose_with_aos(&model, &p, 3, &Backend::ALL, 0.0),
                   choose(&model, &p, 3, &Backend::ALL));
        // A fully converted snapshot sheds the whole stride tax.
        let full = model.flat_cost_adaptive(&p, 3, 1.0);
        assert!(full < model.flat_cost(&p, 3));
        assert_eq!(full, model.flat_row_h_ns * 6000.0 * 4.0);
        // Out-of-range fractions clamp instead of extrapolating.
        assert_eq!(model.flat_cost_adaptive(&p, 3, 2.0), full);
        assert_eq!(model.flat_cost_adaptive(&p, 3, -1.0), model.flat_cost(&p, 3));
    }

    #[test]
    fn planned_index_answers_match_oracle_on_every_backend() {
        let data = clustered_dataset(250, 64, 3, 3, 55);
        let mut idx = PlannedIndex::build(64, data.clone());
        let mut rng = StdRng::seed_from_u64(8);
        for trial in 0..3 {
            let q = BinaryCode::random(64, &mut rng);
            for h in [0u32, 2, 5, 12] {
                let (_, routed) = idx.search_routed(&q, h);
                assert_matches_oracle(routed.clone(), &data, &q, h, "routed");
                for b in Backend::ALL {
                    if let Some(forced) = idx.search_with_backend(b, &q, h) {
                        assert_eq!(forced, routed, "trial={trial} h={h} backend={b}");
                    }
                }
            }
        }
        // Stale snapshot: HaFlat drops out, answers stay exact.
        idx.insert(BinaryCode::from_u64(77, 64), 9_001);
        assert!(!idx.available().contains(&Backend::HaFlat));
        assert_eq!(idx.search_with_backend(Backend::HaFlat, &data[0].0, 2), None);
        let mut data = data;
        data.push((BinaryCode::from_u64(77, 64), 9_001));
        let q = BinaryCode::from_u64(77, 64);
        assert_matches_oracle(idx.search(&q, 1), &data, &q, 1, "stale window");
        idx.freeze();
        assert!(idx.available().contains(&Backend::HaFlat));
        assert_matches_oracle(idx.search(&q, 1), &data, &q, 1, "after refreeze");
    }

    #[test]
    fn planned_index_mutations_keep_backends_in_lockstep() {
        let data = random_dataset(120, 32, 12);
        let mut idx = PlannedIndex::build(32, data.clone());
        let (code, id) = data[7].clone();
        assert!(idx.delete(&code, id));
        assert!(!idx.delete(&code, id));
        assert_eq!(idx.len(), 119);
        idx.insert(code.clone(), id);
        idx.freeze();
        let live = data;
        for h in [0u32, 3] {
            assert_matches_oracle(idx.search(&code, h), &live, &code, h, "lockstep");
        }
        assert_eq!(idx.dha().len(), idx.mih().len());
    }

    #[test]
    fn batch_and_distances_are_canonical() {
        let data = clustered_dataset(150, 128, 2, 4, 21);
        let idx = PlannedIndex::build(128, data.clone());
        let queries: Vec<BinaryCode> = data.iter().take(4).map(|(c, _)| c.clone()).collect();
        for h in [1u32, 4, 9] {
            let batch = idx.batch_search(&queries, h);
            for (q, got) in queries.iter().zip(&batch) {
                assert_eq!(got, &idx.search(q, h), "batch ≡ solo at h={h}");
                let dists = idx.search_with_distances(q, h);
                assert_eq!(
                    dists.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
                    *got,
                    "distance ids ≡ select ids at h={h}"
                );
                assert!(dists.windows(2).all(|w| w[0] <= w[1]), "sorted by (id, d)");
            }
        }
    }

    #[test]
    fn dha_router_equals_underlying_index() {
        let data = clustered_dataset(200, 64, 3, 2, 91);
        let mut dha = crate::DynamicHaIndex::build(data.clone());
        dha.freeze();
        let router = DhaRouter::new(&dha, CostModel::default());
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..3 {
            let q = BinaryCode::random(64, &mut rng);
            for h in [0u32, 3, 7] {
                assert_matches_oracle(router.search(&q, h), &data, &q, h, "router select");
                let mut via_codes: Vec<u32> =
                    router.search_codes(&q, h).iter().map(|&(_, d)| d).collect();
                via_codes.sort_unstable();
                let mut direct: Vec<u32> = dha
                    .search_codes(&q, h)
                    .iter()
                    .map(|&(_, d)| d)
                    .collect();
                direct.sort_unstable();
                assert_eq!(via_codes, direct, "router codes ≡ index codes");
            }
        }
        // Thawed index: only the arena is available, answers unchanged.
        dha.thaw();
        let router = DhaRouter::new(&dha, CostModel::default());
        assert_eq!(router.backend_for(3), Backend::ArenaBfs);
        let q = data[0].0.clone();
        assert_matches_oracle(router.search(&q, 2), &data, &q, 2, "thawed router");
    }
}
