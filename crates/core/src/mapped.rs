//! `MappedIndex` — a read-only generation served straight from a
//! persistent HA-Store snapshot, with **no decode step**.
//!
//! The legacy durable path round-trips through `DynamicHaIndex::from_bytes`
//! (parse every node into owned vectors, re-check invariants, then re-run
//! H-Build for the planner): cold-start cost grows with index size twice
//! over. A `MappedIndex` instead wraps an open [`HaStore`] — the file is
//! `mmap`-ed (or held as one aligned buffer when it arrived as bytes),
//! validated once, and searched in place through the shared
//! [`FlatStoreView`] traversal. First query runs off the page cache;
//! memory cost is the file, shared with every other process mapping it.
//!
//! Search results use the same canonical orders as
//! [`PlannedIndex`](crate::planner::PlannedIndex) — ids ascending,
//! `(id, distance)` pairs ascending — so a generation can swap between
//! planned and mapped form without readers noticing
//! ([`DeltaBase`](crate::delta::DeltaBase) abstracts the two for the
//! serving layer's delta overlay).
//!
//! What a mapped generation cannot do is *mutate* or *re-plan*: it has no
//! arena to absorb inserts and no measured cost model. The serving layer
//! therefore uses it as a crash-recovery bridge — queries are answered
//! through it immediately after restart, and the next background merge
//! materializes its items and builds a full planned generation.

use ha_bitcode::BinaryCode;
use ha_store::{FlatStoreView, HaStore, StoreError};

use crate::TupleId;

/// A frozen generation backed by a mapped HA-Store snapshot (see module
/// docs).
#[derive(Debug)]
pub struct MappedIndex {
    store: HaStore,
}

impl MappedIndex {
    /// Opens a snapshot held in memory (e.g. a DFS blob).
    pub fn open_bytes(bytes: Vec<u8>) -> Result<MappedIndex, StoreError> {
        Ok(MappedIndex {
            store: HaStore::open_bytes(bytes)?,
        })
    }

    /// Opens (and `mmap`s, where possible) a snapshot file.
    pub fn open_file(path: &std::path::Path) -> Result<MappedIndex, StoreError> {
        Ok(MappedIndex {
            store: HaStore::open_file(path)?,
        })
    }

    /// The underlying open store.
    pub fn store(&self) -> &HaStore {
        &self.store
    }

    /// The zero-copy search view.
    pub fn view(&self) -> FlatStoreView<'_> {
        self.store.view()
    }

    /// Number of indexed tuples (with multiplicity).
    pub fn len(&self) -> usize {
        self.store.meta().tuple_count
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Width of the indexed codes in bits.
    pub fn code_len(&self) -> usize {
        self.store.meta().code_len
    }

    /// Arena mutation epoch the snapshot froze at.
    pub fn epoch(&self) -> u64 {
        self.store.meta().epoch
    }

    /// True when served off the page cache rather than an owned buffer.
    pub fn is_mapped(&self) -> bool {
        self.store.is_mapped()
    }

    /// Hamming-select: live ids within distance `h`, sorted ascending
    /// (the canonical planned-index order).
    pub fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        let mut out = self.view().search(query, h);
        out.sort_unstable();
        out
    }

    /// Batched Hamming-select, each answer sorted ascending.
    pub fn batch_search(&self, queries: &[BinaryCode], h: u32) -> Vec<Vec<TupleId>> {
        let mut out = self.view().batch_search(queries, h);
        for ids in &mut out {
            ids.sort_unstable();
        }
        out
    }

    /// Hamming-select with exact distances, sorted by `(id, distance)`.
    pub fn search_with_distances(&self, query: &BinaryCode, h: u32) -> Vec<(TupleId, u32)> {
        let mut out = self.view().search_with_distances(query, h);
        out.sort_unstable_by_key(|&(id, d)| (id, d));
        out
    }

    /// Distinct qualifying codes with exact distances (traversal order).
    pub fn search_codes(&self, query: &BinaryCode, h: u32) -> Vec<(BinaryCode, u32)> {
        self.view().search_codes(query, h)
    }

    /// Exact point lookup: ids stored under `code` — zero-copy, borrowed
    /// straight from the mapped id section.
    pub fn ids_for_code(&self, code: &BinaryCode) -> &[TupleId] {
        self.store.view().ids_for_code(code)
    }

    /// Every indexed `(code, id)` pair, materialized — the H-Build input
    /// when the next merge upgrades this generation to a planned one.
    pub fn items_vec(&self) -> Vec<(BinaryCode, TupleId)> {
        self.view().items().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::random_dataset;
    use crate::{DynamicHaIndex, HammingIndex, PlannedIndex};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mapped_of(data: &[(BinaryCode, TupleId)]) -> MappedIndex {
        let mut dha = DynamicHaIndex::build(data.to_vec());
        dha.freeze();
        let bytes = dha.flat().expect("frozen").store_bytes();
        MappedIndex::open_bytes(bytes).expect("round-trip")
    }

    #[test]
    fn mapped_answers_match_planned_canonical_orders() {
        const LEN: usize = 32;
        let data = random_dataset(300, LEN, 91);
        let planned = PlannedIndex::build(LEN, data.clone());
        let mapped = mapped_of(&data);
        assert_eq!(mapped.len(), planned.len());
        assert_eq!(mapped.code_len(), LEN);

        let mut rng = StdRng::seed_from_u64(92);
        let queries: Vec<BinaryCode> =
            (0..12).map(|_| BinaryCode::random(LEN, &mut rng)).collect();
        for h in [0u32, 2, 5, 9] {
            for q in &queries {
                assert_eq!(mapped.search(q, h), planned.search(q, h), "h={h}");
                assert_eq!(
                    mapped.search_with_distances(q, h),
                    planned.search_with_distances(q, h),
                    "h={h}"
                );
            }
            let batch = mapped.batch_search(&queries, h);
            for (q, got) in queries.iter().zip(batch) {
                assert_eq!(got, mapped.search(q, h));
            }
        }
        for (code, _) in data.iter().take(20) {
            let mut want = planned.dha().ids_for_code(code);
            want.sort_unstable();
            let mut got = mapped.ids_for_code(code).to_vec();
            got.sort_unstable();
            assert_eq!(got, want);
        }
        let mut live_a = mapped.items_vec();
        let mut live_b: Vec<_> = planned.items().collect();
        live_a.sort();
        live_b.sort();
        assert_eq!(live_a, live_b);
    }
}
