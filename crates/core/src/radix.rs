//! Radix-Tree (PATRICIA trie) approach to Hamming-select (§4.2).
//!
//! Codes sharing a prefix share the XOR work for that prefix: a depth-first
//! descent accumulates the mismatch count edge by edge and abandons a
//! branch as soon as the budget `h` is exhausted (the downward-closure
//! property applied to prefixes, Example 3 of the paper).
//!
//! The paper's criticism — which Table 4 and Figure 6 quantify — is that
//! the structure is *prefix-sensitive*: two codes differing only in bit 0
//! (t2 and t7 of the running example) live in different subtrees, so their
//! common suffix is XORed twice.
//!
//! Edges are path-compressed; each edge label is at most 64 bits packed in
//! a `u64` (longer runs simply chain nodes), so label comparison is one XOR
//! + popcount.

use ha_bitcode::BinaryCode;

use crate::memory::{vec_bytes, MemoryReport};
use crate::{HammingIndex, MutableIndex, TupleId};

/// Maximum bits in one compressed edge label.
const MAX_LABEL: usize = 64;

#[derive(Clone, Debug)]
struct Node {
    /// Compressed edge label leading *into* this node, MSB-aligned in a
    /// `u64`: bit j of the label is bit `63 - j` of `label_bits`.
    label_bits: u64,
    label_len: u8,
    /// Children indexed by their first label bit.
    children: [Option<u32>; 2],
    /// Tuple ids at full depth (leaves only).
    ids: Vec<TupleId>,
}

impl Node {
    fn new(label_bits: u64, label_len: u8) -> Self {
        Node {
            label_bits,
            label_len,
            children: [None, None],
            ids: Vec::new(),
        }
    }

}

/// A PATRICIA trie over fixed-length binary codes with branch-and-bound
/// Hamming search.
#[derive(Clone, Debug)]
pub struct RadixTreeIndex {
    code_len: usize,
    nodes: Vec<Node>,
    /// Children of the conceptual root (zero-length label).
    root_children: [Option<u32>; 2],
    len: usize,
}

impl RadixTreeIndex {
    /// Empty index for `code_len`-bit codes.
    pub fn new(code_len: usize) -> Self {
        assert!(code_len >= 1, "code length must be >= 1");
        RadixTreeIndex {
            code_len,
            nodes: Vec::new(),
            root_children: [None, None],
            len: 0,
        }
    }

    /// Builds from `(code, id)` pairs.
    pub fn build(items: impl IntoIterator<Item = (BinaryCode, TupleId)>) -> Self {
        let mut iter = items.into_iter().peekable();
        let code_len = iter
            .peek()
            .map(|(c, _)| c.len())
            .expect("RadixTreeIndex::build needs at least one item");
        let mut idx = Self::new(code_len);
        for (code, id) in iter {
            idx.insert(code, id);
        }
        idx
    }

    /// Extracts up to `MAX_LABEL` bits of `code` starting at `depth`,
    /// MSB-aligned, returning `(bits, len)`.
    fn slice(code: &BinaryCode, depth: usize, want: usize) -> (u64, u8) {
        let len = want.min(MAX_LABEL).min(code.len() - depth);
        debug_assert!(len > 0);
        let v = code.extract(depth, len);
        ((v << (64 - len)), len as u8)
    }

    /// Number of leading bits on which an MSB-aligned label agrees with the
    /// code slice of equal length.
    fn common_prefix(a_bits: u64, b_bits: u64, len: u8) -> u8 {
        let x = a_bits ^ b_bits;
        if x == 0 {
            len
        } else {
            (x.leading_zeros() as u8).min(len)
        }
    }

    fn alloc(&mut self, node: Node) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        id
    }

    /// Itemized memory usage.
    pub fn memory_report(&self) -> MemoryReport {
        let payload: usize = self.nodes.iter().map(|n| vec_bytes(&n.ids)).sum();
        MemoryReport {
            structure_bytes: vec_bytes(&self.nodes),
            code_bytes: 0, // labels live inside the node struct
            payload_bytes: payload,
        }
    }

    /// Recursive branch-and-bound descent.
    fn search_node(
        &self,
        node_id: u32,
        query: &BinaryCode,
        depth: usize,
        acc: u32,
        h: u32,
        out: &mut Vec<TupleId>,
    ) {
        let node = &self.nodes[node_id as usize];
        let llen = node.label_len as usize;
        let (qbits, _) = Self::slice(query, depth, llen);
        // Mismatches on this edge: XOR of the MSB-aligned label slices.
        let mism = (qbits ^ node.label_bits).count_ones();
        let acc = acc + mism;
        if acc > h {
            return; // prune: downward closure on the shared prefix
        }
        let depth = depth + llen;
        if depth == self.code_len {
            out.extend_from_slice(&node.ids);
            return;
        }
        for child in node.children.iter().flatten() {
            self.search_node(*child, query, depth, acc, h, out);
        }
    }

    #[inline]
    fn read_slot(&self, slot: Slot) -> Option<u32> {
        match slot {
            Slot::Root(b) => self.root_children[b],
            Slot::Child(n, b) => self.nodes[n as usize].children[b],
        }
    }

    #[inline]
    fn write_slot(&mut self, slot: Slot, value: Option<u32>) {
        match slot {
            Slot::Root(b) => self.root_children[b] = value,
            Slot::Child(n, b) => self.nodes[n as usize].children[b] = value,
        }
    }

    /// Allocates the chain of nodes spelling `code[depth..]` (one node per
    /// ≤64-bit label segment) and returns the head; the final node gets
    /// `id`.
    fn build_chain(&mut self, code: &BinaryCode, mut depth: usize, id: TupleId) -> u32 {
        let (bits, len) = Self::slice(code, depth, MAX_LABEL);
        let head = self.alloc(Node::new(bits, len));
        let mut tail = head;
        depth += len as usize;
        while depth < self.code_len {
            let (bits, len) = Self::slice(code, depth, MAX_LABEL);
            let nid = self.alloc(Node::new(bits, len));
            let pos = usize::from(code.get(depth));
            self.nodes[tail as usize].children[pos] = Some(nid);
            tail = nid;
            depth += len as usize;
        }
        self.nodes[tail as usize].ids.push(id);
        head
    }

    fn insert_impl(&mut self, code: &BinaryCode, id: TupleId) {
        let mut depth = 0usize;
        let mut slot = Slot::Root(usize::from(code.get(0)));
        loop {
            let Some(nid) = self.read_slot(slot) else {
                let head = self.build_chain(code, depth, id);
                self.write_slot(slot, Some(head));
                return;
            };
            let (label_bits, llen) = {
                let n = &self.nodes[nid as usize];
                (n.label_bits, n.label_len)
            };
            let (cbits, clen) = Self::slice(code, depth, llen as usize);
            debug_assert_eq!(clen, llen, "code shorter than existing path");
            let common = Self::common_prefix(label_bits, cbits, llen);
            if common == llen {
                // Full label match: descend.
                depth += llen as usize;
                if depth == self.code_len {
                    self.nodes[nid as usize].ids.push(id);
                    return;
                }
                slot = Slot::Child(nid, usize::from(code.get(depth)));
                continue;
            }
            // Split the edge: a new parent keeps the first `common` bits
            // (slots guarantee common >= 1), the old node keeps the rest.
            debug_assert!(common >= 1);
            let parent_bits = (label_bits >> (64 - common as u32)) << (64 - common as u32);
            let old_rem_bits = label_bits << common;
            let old_first = ((old_rem_bits >> 63) & 1) as usize;
            let pid = self.alloc(Node::new(parent_bits, common));
            self.nodes[nid as usize].label_bits = old_rem_bits;
            self.nodes[nid as usize].label_len = llen - common;
            self.nodes[pid as usize].children[old_first] = Some(nid);
            self.write_slot(slot, Some(pid));
            depth += common as usize;
            slot = Slot::Child(pid, usize::from(code.get(depth)));
        }
    }
}

/// A mutable link in the trie: either a root child or a node's child cell.
#[derive(Clone, Copy)]
enum Slot {
    Root(usize),
    Child(u32, usize),
}

impl HammingIndex for RadixTreeIndex {
    fn name(&self) -> &'static str {
        "Radix-Tree"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn code_len(&self) -> usize {
        self.code_len
    }

    fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        assert_eq!(query.len(), self.code_len, "query length mismatch");
        let mut out = Vec::new();
        for child in self.root_children.iter().flatten() {
            self.search_node(*child, query, 0, 0, h, &mut out);
        }
        out
    }

    fn memory_bytes(&self) -> usize {
        self.memory_report().total()
    }
}

impl MutableIndex for RadixTreeIndex {
    fn insert(&mut self, code: BinaryCode, id: TupleId) {
        assert_eq!(code.len(), self.code_len, "code length mismatch");
        self.insert_impl(&code, id);
        self.len += 1;
    }

    fn delete(&mut self, code: &BinaryCode, id: TupleId) -> bool {
        assert_eq!(code.len(), self.code_len, "code length mismatch");
        // Walk the exact path; remember it for cleanup.
        let mut path: Vec<u32> = Vec::new();
        let mut depth = 0usize;
        let mut cur = self.root_children[usize::from(code.get(0))];
        while let Some(nid) = cur {
            let node = &self.nodes[nid as usize];
            let (cbits, _) = Self::slice(code, depth, node.label_len as usize);
            if cbits != node.label_bits {
                return false;
            }
            path.push(nid);
            depth += node.label_len as usize;
            if depth == self.code_len {
                break;
            }
            cur = node.children[usize::from(code.get(depth))];
        }
        if depth != self.code_len || path.is_empty() {
            return false;
        }
        let leaf = *path.last().expect("non-empty path") as usize;
        let ids = &mut self.nodes[leaf].ids;
        let Some(pos) = ids.iter().position(|&x| x == id) else {
            return false;
        };
        ids.swap_remove(pos);
        self.len -= 1;
        // Structural cleanup: drop now-empty leaves bottom-up. (Nodes stay
        // allocated in the arena; slots are unlinked. Arena compaction is a
        // rebuild concern, not a hot-path one.)
        if self.nodes[leaf].ids.is_empty() {
            let mut remove = Some(*path.last().expect("non-empty") );
            for i in (0..path.len().saturating_sub(1)).rev() {
                let Some(dead) = remove else { break };
                let parent = path[i] as usize;
                for c in self.nodes[parent].children.iter_mut() {
                    if *c == Some(dead) {
                        *c = None;
                    }
                }
                let p = &self.nodes[parent];
                remove = if p.ids.is_empty() && p.children.iter().all(Option::is_none) {
                    Some(path[i])
                } else {
                    None
                };
            }
            if let Some(dead) = remove {
                for c in self.root_children.iter_mut() {
                    if *c == Some(dead) {
                        *c = None;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_matches_oracle, paper_table_s, random_dataset};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn paper_example_select() {
        let data = paper_table_s();
        let idx = RadixTreeIndex::build(data.clone());
        let q: BinaryCode = "101100010".parse().unwrap();
        assert_matches_oracle(idx.search(&q, 3), &data, &q, 3, "radix");
    }

    #[test]
    fn paper_example_3_prunes_shared_prefix() {
        // Query 110010110, h = 2: t0 and t1 share prefix "001…" at distance
        // > 2 and must be pruned (and thus absent from results).
        let data = paper_table_s();
        let idx = RadixTreeIndex::build(data.clone());
        let q: BinaryCode = "110010110".parse().unwrap();
        let got = idx.search(&q, 2);
        assert!(!got.contains(&0) && !got.contains(&1));
        assert_matches_oracle(got, &data, &q, 2, "radix");
    }

    #[test]
    fn matches_oracle_on_random_data_all_thresholds() {
        let data = random_dataset(300, 32, 11);
        let idx = RadixTreeIndex::build(data.clone());
        let mut rng = StdRng::seed_from_u64(99);
        for h in [0, 1, 2, 3, 5, 8, 16, 32] {
            let q = BinaryCode::random(32, &mut rng);
            assert_matches_oracle(idx.search(&q, h), &data, &q, h, "radix");
        }
    }

    #[test]
    fn long_codes_chain_labels() {
        // 200-bit codes force multi-segment edge labels.
        let data = random_dataset(50, 200, 3);
        let idx = RadixTreeIndex::build(data.clone());
        let mut rng = StdRng::seed_from_u64(5);
        for h in [0, 4, 40] {
            let q = BinaryCode::random(200, &mut rng);
            assert_matches_oracle(idx.search(&q, h), &data, &q, h, "radix-long");
        }
        // Exact self-search finds each code.
        for (c, id) in data.iter().take(10) {
            assert!(idx.search(c, 0).contains(id));
        }
    }

    #[test]
    fn duplicate_codes_accumulate_ids() {
        let c: BinaryCode = "10110".parse().unwrap();
        let idx = RadixTreeIndex::build([(c.clone(), 1), (c.clone(), 2), (c.clone(), 3)]);
        let mut got = idx.search(&c, 0);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn delete_and_reinsert() {
        let data = random_dataset(100, 24, 21);
        let mut idx = RadixTreeIndex::build(data.clone());
        let (code, id) = data[42].clone();
        assert!(idx.delete(&code, id));
        assert!(!idx.delete(&code, id));
        assert!(!idx.search(&code, 0).contains(&id));
        idx.insert(code.clone(), id);
        assert!(idx.search(&code, 0).contains(&id));
        // Whole index still consistent.
        let mut rng = StdRng::seed_from_u64(2);
        let q = BinaryCode::random(24, &mut rng);
        assert_matches_oracle(idx.search(&q, 4), &data, &q, 4, "radix-after-update");
    }

    #[test]
    fn delete_everything_leaves_empty_tree() {
        let data = random_dataset(60, 16, 8);
        let mut idx = RadixTreeIndex::build(data.clone());
        for (c, id) in &data {
            assert!(idx.delete(c, *id));
        }
        assert_eq!(idx.len(), 0);
        let q = BinaryCode::zero(16);
        assert!(idx.search(&q, 16).is_empty());
        assert!(idx.root_children.iter().all(Option::is_none));
    }

    #[test]
    fn incremental_equals_bulk() {
        let data = random_dataset(150, 32, 77);
        let bulk = RadixTreeIndex::build(data.clone());
        let mut inc = RadixTreeIndex::new(32);
        for (c, id) in &data {
            inc.insert(c.clone(), *id);
        }
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let q = BinaryCode::random(32, &mut rng);
            let h = rng.gen_range(0..8);
            let mut a = bulk.search(&q, h);
            let mut b = inc.search(&q, h);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_radix_equals_oracle(seed in any::<u64>(), h in 0u32..12) {
            let data = random_dataset(120, 28, seed);
            let idx = RadixTreeIndex::build(data.clone());
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            let q = BinaryCode::random(28, &mut rng);
            assert_matches_oracle(idx.search(&q, h), &data, &q, h, "radix-prop");
        }
    }
}
