//! HEngine-style segment index (§2; Liu, Shen, Torng — ICDE 2011).
//!
//! HEngine relaxes Manku's pigeonhole from *exact* segment match to
//! *distance ≤ 1*: if `hamming(a, b) <= h` and the code is split into
//! `r = ⌈(h+1)/2⌉` segments, some segment pair is within distance 1
//! (otherwise the total would be at least `2r > h`). So only `r` sorted
//! tables are needed — roughly half of Manku's — at the price of probing
//! each table with the query segment *and all its one-bit variants*
//! ("generate one-bit differing binary code with each query, then carry out
//! several binary searches over sorted hash tables").
//!
//! Memory is lower than MH (fewer tables, and each stores `(u64, u32)`
//! pairs), but query time grows with segment width (more variants) and with
//! `h` — the sensitivity Figure 6 shows.

use ha_bitcode::segment::Segmentation;
use ha_bitcode::BinaryCode;

use crate::memory::{vec_bytes, MemoryReport};
use crate::{HammingIndex, MutableIndex, TupleId};

/// One sorted signature table: `(segment value, row index)` ordered by
/// value, probed by binary search.
type SortedTable = Vec<(u64, u32)>;

/// HEngine index with `r` segment tables (guaranteed threshold `2r - 1`).
#[derive(Clone, Debug)]
pub struct HEngine {
    code_len: usize,
    seg: Segmentation,
    tables: Vec<SortedTable>,
    rows: Vec<(BinaryCode, TupleId)>,
    tombstones: usize,
}

impl HEngine {
    /// Empty index with `r` segments over `code_len`-bit codes. `r` is
    /// raised if needed so every segment fits a machine word (extra
    /// segments only strengthen the pigeonhole guarantee).
    pub fn new(code_len: usize, r: usize) -> Self {
        let r = r.max(code_len.div_ceil(64));
        let seg = Segmentation::new(code_len, r);
        HEngine {
            code_len,
            tables: (0..seg.count()).map(|_| Vec::new()).collect(),
            seg,
            rows: Vec::new(),
            tombstones: 0,
        }
    }

    /// Empty index sized for threshold `h`: `r = ⌈(h+1)/2⌉` segments.
    pub fn for_threshold(code_len: usize, h: u32) -> Self {
        let r = ((h as usize + 1).div_ceil(2)).max(1);
        Self::new(code_len, r.min(code_len))
    }

    /// Builds from `(code, id)` pairs with `r` segments.
    pub fn build(items: impl IntoIterator<Item = (BinaryCode, TupleId)>, r: usize) -> Self {
        let mut iter = items.into_iter().peekable();
        let code_len = iter
            .peek()
            .map(|(c, _)| c.len())
            .expect("HEngine::build needs at least one item");
        let mut idx = Self::new(code_len, r);
        for (code, id) in iter {
            idx.insert(code, id);
        }
        idx
    }

    /// Number of segment tables `r`.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// All row indices whose segment `i` value equals `key`.
    fn probe<'a>(&'a self, i: usize, key: u64) -> impl Iterator<Item = u32> + 'a {
        let table = &self.tables[i];
        let start = table.partition_point(|&(v, _)| v < key);
        table[start..]
            .iter()
            .take_while(move |&&(v, _)| v == key)
            .map(|&(_, row)| row)
    }

    /// Itemized memory usage.
    pub fn memory_report(&self) -> MemoryReport {
        let tables: usize = self.tables.iter().map(vec_bytes).sum();
        let code_heap: usize = self.rows.iter().map(|(c, _)| c.heap_bytes()).sum();
        MemoryReport {
            structure_bytes: tables,
            code_bytes: vec_bytes(&self.rows) + code_heap,
            payload_bytes: 0,
        }
    }
}

impl HammingIndex for HEngine {
    fn name(&self) -> &'static str {
        "HEngine"
    }

    fn len(&self) -> usize {
        self.rows.len() - self.tombstones
    }

    fn code_len(&self) -> usize {
        self.code_len
    }

    fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        assert_eq!(query.len(), self.code_len, "query length mismatch");
        let mut seen = vec![false; self.rows.len()];
        let mut out = Vec::new();
        for i in 0..self.tables.len() {
            let (_, width) = self.seg.bounds(i);
            let key = self.seg.extract(query, i);
            // Probe the exact value and every one-bit variant (the
            // "signature" expansion).
            for variant in Segmentation::one_bit_variants(key, width) {
                for row in self.probe(i, variant) {
                    let r = row as usize;
                    if seen[r] {
                        continue;
                    }
                    seen[r] = true;
                    let (code, id) = &self.rows[r];
                    if *id != TupleId::MAX && code.hamming_within(query, h).is_some() {
                        out.push(*id);
                    }
                }
            }
        }
        out
    }

    fn complete_up_to(&self) -> Option<u32> {
        Some(2 * self.tables.len() as u32 - 1)
    }

    fn memory_bytes(&self) -> usize {
        self.memory_report().total()
    }
}

impl MutableIndex for HEngine {
    fn insert(&mut self, code: BinaryCode, id: TupleId) {
        assert_eq!(code.len(), self.code_len, "code length mismatch");
        let row = self.rows.len() as u32;
        for i in 0..self.tables.len() {
            let key = self.seg.extract(&code, i);
            let table = &mut self.tables[i];
            let pos = table.partition_point(|&(v, _)| v <= key);
            table.insert(pos, (key, row));
        }
        self.rows.push((code, id));
    }

    fn delete(&mut self, code: &BinaryCode, id: TupleId) -> bool {
        let key = self.seg.extract(code, 0);
        let Some(row) = self.probe(0, key).find(|&r| {
            self.rows[r as usize].1 == id && &self.rows[r as usize].0 == code
        }) else {
            return false;
        };
        for i in 0..self.tables.len() {
            let key = self.seg.extract(code, i);
            let table = &mut self.tables[i];
            if let Some(pos) = {
                let start = table.partition_point(|&(v, _)| v < key);
                table[start..]
                    .iter()
                    .position(|&(v, r)| v == key && r == row)
                    .map(|p| start + p)
            } {
                table.remove(pos);
            }
        }
        self.rows[row as usize].1 = TupleId::MAX;
        self.tombstones += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_matches_oracle, paper_table_s, random_dataset};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn for_threshold_sizes_r_by_pigeonhole() {
        assert_eq!(HEngine::for_threshold(32, 1).num_tables(), 1);
        assert_eq!(HEngine::for_threshold(32, 3).num_tables(), 2);
        assert_eq!(HEngine::for_threshold(32, 4).num_tables(), 3);
        assert_eq!(HEngine::for_threshold(32, 7).num_tables(), 4);
        // Guarantee covers the requested h.
        for h in 1..10 {
            let e = HEngine::for_threshold(32, h);
            assert!(e.complete_up_to().unwrap() >= h, "h={h}");
        }
    }

    #[test]
    fn paper_example_select() {
        let data = paper_table_s();
        let idx = HEngine::build(data.clone(), 2); // guarantee h ≤ 3
        let q: BinaryCode = "101100010".parse().unwrap();
        assert_matches_oracle(idx.search(&q, 3), &data, &q, 3, "hengine");
    }

    #[test]
    fn complete_within_guarantee_random_data() {
        let data = random_dataset(400, 32, 15);
        for r in [2usize, 3, 4] {
            let idx = HEngine::build(data.clone(), r);
            let guarantee = idx.complete_up_to().unwrap();
            let mut rng = StdRng::seed_from_u64(r as u64);
            for h in [0, guarantee / 2, guarantee] {
                let q = BinaryCode::random(32, &mut rng);
                assert_matches_oracle(idx.search(&q, h), &data, &q, h, "hengine");
            }
        }
    }

    #[test]
    fn no_false_positives_beyond_guarantee() {
        let data = random_dataset(300, 32, 16);
        let idx = HEngine::build(data.clone(), 2);
        let mut rng = StdRng::seed_from_u64(3);
        let q = BinaryCode::random(32, &mut rng);
        let h = 10;
        let want = crate::testkit::oracle_select(&data, &q, h);
        for id in idx.search(&q, h) {
            assert!(want.contains(&id));
        }
    }

    #[test]
    fn uses_less_memory_than_mh10() {
        let data = random_dataset(1000, 64, 20);
        let he = HEngine::build(data.clone(), 2).memory_bytes();
        let mh = crate::MultiHashTable::build(data, 10).memory_bytes();
        assert!(he < mh, "HEngine {he}B should undercut MH-10 {mh}B");
    }

    #[test]
    fn insert_delete_roundtrip() {
        let data = random_dataset(150, 32, 19);
        let mut idx = HEngine::build(data.clone(), 2);
        let (code, id) = data[99].clone();
        assert!(idx.delete(&code, id));
        assert!(!idx.delete(&code, id));
        assert!(!idx.search(&code, 0).contains(&id));
        idx.insert(code.clone(), id);
        assert!(idx.search(&code, 0).contains(&id));
        let mut rng = StdRng::seed_from_u64(5);
        let q = BinaryCode::random(32, &mut rng);
        assert_matches_oracle(idx.search(&q, 3), &data, &q, 3, "hengine-after-update");
    }

    #[test]
    fn probe_finds_all_equal_keys() {
        // Multiple rows with identical segment values must all be probed.
        let c1: BinaryCode = "00001111".parse().unwrap();
        let c2: BinaryCode = "00000000".parse().unwrap(); // same first segment
        let idx = HEngine::build([(c1.clone(), 1), (c2.clone(), 2)], 2);
        let rows: Vec<u32> = idx.probe(0, 0b0000).collect();
        assert_eq!(rows.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_hengine_complete_within_guarantee(seed in any::<u64>(), h in 0u32..4) {
            let data = random_dataset(120, 28, seed);
            let idx = HEngine::build(data.clone(), 2); // guarantee 3
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
            let q = BinaryCode::random(28, &mut rng);
            assert_matches_oracle(idx.search(&q, h), &data, &q, h, "hengine-prop");
        }
    }
}
