//! HA-Par — the scoped work-stealing search executor.
//!
//! The kernel layer (HA-Kern) runs a single sibling-group sweep near the
//! hardware limit; what remained sequential was everything *around* the
//! sweeps: `HaServe` probed its shards one after another on the worker
//! thread that claimed the batch, and a frozen-frontier level was walked
//! group by group on one core. This module is the execution layer that
//! closes the gap:
//!
//! * [`SearchExecutor::fan_out`] turns per-shard probes (or any `n`
//!   independent tasks over borrowed state) into stealable tasks on
//!   [`ha_bitcode::pool::fan_out`]'s scoped pool. Results come back in
//!   task order, so callers merge exactly as their sequential loops did
//!   — answers stay byte-identical (DESIGN.md, "Why shard fan-out
//!   preserves exactness").
//! * [`ExecConfig`] is the one knob bundle: executor width, a pinned
//!   sweep [`Kernel`] (default: the one-time runtime probe
//!   [`Kernel::detect`]), and the frontier prefetch distance. `HaServe`
//!   embeds it in `ServeConfig` and forwards the kernel/prefetch knobs
//!   into the [`FreezePolicy`](crate::FreezePolicy) its generations are
//!   frozen under.
//!
//! Observability: every parallel fan-out opens an `exec.fan_out` span
//! and bumps `exec.tasks` / `exec.parallel_fanouts`; the executor
//! records its resolved kernel once at construction under
//! `exec.kernel.<name>`, so a trace shows what the process actually
//! dispatched to, not what was compiled in.

use ha_bitcode::pool;
use ha_bitcode::Kernel;

/// Execution knobs for query-time parallelism — how wide to fan out,
/// which kernel to sweep with, how far ahead to prefetch. Carried by
/// `ServeConfig` and mapped into the `FreezePolicy` of every generation
/// the service freezes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads for shard fan-out; `<= 1` runs tasks inline on
    /// the calling thread with zero pool overhead.
    pub workers: usize,
    /// Pinned sweep kernel for frozen snapshots; `None` defers to the
    /// runtime CPU-feature probe ([`Kernel::detect`]). Every kernel
    /// computes identical distances — this is purely a speed knob.
    pub kernel: Option<Kernel>,
    /// Frontier prefetch look-ahead in entries; `None` takes the
    /// measured default, `Some(0)` disables the hints.
    pub prefetch: Option<usize>,
}

impl ExecConfig {
    /// The sequential executor: every task inline, in order — the
    /// oracle configuration the equivalence suite compares against.
    pub fn sequential() -> ExecConfig {
        ExecConfig { workers: 1, kernel: None, prefetch: None }
    }

    /// Same config with a different fan-out width.
    pub fn with_workers(mut self, workers: usize) -> ExecConfig {
        self.workers = workers;
        self
    }

    /// Same config sweeping on `kernel` instead of the runtime probe.
    pub fn with_kernel(mut self, kernel: Kernel) -> ExecConfig {
        self.kernel = Some(kernel);
        self
    }

    /// Same config with an explicit prefetch distance (0 disables).
    pub fn with_prefetch(mut self, distance: usize) -> ExecConfig {
        self.prefetch = Some(distance);
        self
    }

    /// The kernel this config resolves to at runtime.
    pub fn resolved_kernel(&self) -> Kernel {
        self.kernel.unwrap_or_else(Kernel::detect)
    }
}

impl Default for ExecConfig {
    /// As many workers as the host exposes, runtime-probed kernel,
    /// default prefetch. On a single-core host this degenerates to the
    /// sequential executor — the pool is never spun up.
    fn default() -> ExecConfig {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ExecConfig::sequential().with_workers(workers)
    }
}

/// The fan-out engine built from an [`ExecConfig`] — cheap to construct,
/// held by `HaServe` for the process lifetime.
#[derive(Clone, Copy, Debug)]
pub struct SearchExecutor {
    workers: usize,
}

impl SearchExecutor {
    /// Builds the executor and records the config's resolved kernel in
    /// the counter registry (`exec.kernel.<name>`), so traces show the
    /// per-process dispatch decision.
    pub fn new(cfg: &ExecConfig) -> SearchExecutor {
        let counter = match cfg.resolved_kernel() {
            Kernel::Scalar => "exec.kernel.scalar",
            Kernel::Lanes => "exec.kernel.lanes",
            Kernel::Simd => "exec.kernel.simd",
        };
        ha_obs::add(counter, 1);
        SearchExecutor { workers: cfg.workers.max(1) }
    }

    /// Fan-out width this executor runs at.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(0..tasks)` across the executor's workers and returns the
    /// results **in task order** — the exact output of the sequential
    /// `(0..tasks).map(f).collect()`, which is what lets callers keep
    /// their merge code unchanged. Tasks may borrow caller state (read
    /// guards, views): the pool uses scoped threads.
    pub fn fan_out<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.workers <= 1 || tasks <= 1 {
            return (0..tasks).map(f).collect();
        }
        let _span = ha_obs::span_labeled("exec.fan_out", || {
            format!("tasks={tasks} workers={}", self.workers)
        });
        ha_obs::add("exec.parallel_fanouts", 1);
        ha_obs::add("exec.tasks", tasks as u64);
        pool::fan_out(self.workers, tasks, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_matches_sequential_map() {
        let data: Vec<u32> = (0..100).map(|i| i * 7).collect();
        let expect: Vec<u32> = data.iter().map(|&v| v + 1).collect();
        for workers in [1, 2, 8] {
            let exec = SearchExecutor::new(&ExecConfig::sequential().with_workers(workers));
            assert_eq!(exec.fan_out(data.len(), |i| data[i] + 1), expect);
        }
    }

    #[test]
    fn config_resolution_and_builders() {
        let seq = ExecConfig::sequential();
        assert_eq!(seq.workers, 1);
        assert_eq!(seq.resolved_kernel(), Kernel::detect());
        let pinned = seq.with_kernel(Kernel::Scalar).with_prefetch(0).with_workers(4);
        assert_eq!(pinned.resolved_kernel(), Kernel::Scalar);
        assert_eq!(pinned.prefetch, Some(0));
        assert_eq!(pinned.workers, 4);
        assert!(ExecConfig::default().workers >= 1);
        // Zero-worker configs clamp to 1: an executor always runs.
        assert_eq!(SearchExecutor::new(&seq.with_workers(0)).workers(), 1);
    }

    #[test]
    fn fan_out_borrows_non_static_state() {
        let exec = SearchExecutor::new(&ExecConfig::sequential().with_workers(3));
        let rows = vec![vec![1u64, 2, 3], vec![4], vec![], vec![5, 6]];
        let sums = exec.fan_out(rows.len(), |i| rows[i].iter().sum::<u64>());
        assert_eq!(sums, vec![6, 4, 0, 11]);
    }
}
