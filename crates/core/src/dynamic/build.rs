//! H-Build (Algorithm 1): bulk-loading the Dynamic HA-Index.
//!
//! 1. Group tuples by distinct code and sort the codes in **Gray order**
//!    (non-decreasing Gray rank) so neighbours share long FLSSeqs.
//! 2. Slide a `w`-slot window over the current level; each window's members
//!    either share a non-vacuous maximal FLSSeq — which becomes their
//!    parent, the members keeping only residual bits — or they are linked
//!    to the top level of the index directly (Algorithm 1 line 16).
//! 3. Parents with identical patterns are consolidated into one node with
//!    summed frequency (lines 6–11).
//! 4. Repeat on the freshly created parents until the requested depth is
//!    reached or no further sharing exists; whatever remains forms the top
//!    level.

use std::collections::HashMap;

use ha_bitcode::gray::gray_rank;
use ha_bitcode::{BinaryCode, MaskedCode};

use super::{DhaConfig, DynamicHaIndex, Node, NodeId};
use crate::TupleId;

/// Groups tuples by distinct code and sorts the codes in Gray order
/// (Algorithm 1 line 1). Returns `(code_len, total, sorted distinct)`.
fn gray_grouped(
    items: impl IntoIterator<Item = (BinaryCode, TupleId)>,
) -> (usize, usize, Vec<(BinaryCode, Vec<TupleId>)>) {
    let mut groups: HashMap<BinaryCode, Vec<TupleId>> = HashMap::new();
    let mut total = 0usize;
    let mut code_len = 0usize;
    for (code, id) in items {
        if code_len == 0 {
            code_len = code.len();
        } else {
            assert_eq!(code.len(), code_len, "mixed code lengths");
        }
        groups.entry(code).or_default().push(id);
        total += 1;
    }
    let mut distinct: Vec<(BinaryCode, Vec<TupleId>)> = groups.into_iter().collect();
    distinct.sort_by_cached_key(|(c, _)| gray_rank(c));
    (code_len, total, distinct)
}

pub(super) fn h_build(
    items: impl IntoIterator<Item = (BinaryCode, TupleId)>,
    config: DhaConfig,
) -> DynamicHaIndex {
    let (code_len, total, distinct) = gray_grouped(items);
    let mut idx = DynamicHaIndex::empty(code_len, config);
    idx.len = total;
    if total == 0 {
        return idx;
    }
    build_sorted(&mut idx, distinct);
    idx
}

/// The extraction half of H-Build: runs the sliding-window levels over an
/// already Gray-sorted distinct-code list, into a fresh empty index.
fn build_sorted(idx: &mut DynamicHaIndex, distinct: Vec<(BinaryCode, Vec<TupleId>)>) {
    // Leaf level.
    let keep_ids = idx.config.keep_leaf_ids;
    let mut current: Vec<NodeId> = Vec::with_capacity(distinct.len());
    if keep_ids {
        idx.leaves.reserve(distinct.len());
    }
    for (code, ids) in &distinct {
        let nid = alloc(idx, leaf_node(keep_ids, code, ids));
        if keep_ids {
            idx.leaves.insert(code.clone(), nid);
        }
        current.push(nid);
    }

    // Extraction levels (lines 3–24), windows analysed in window order.
    extract_levels(idx, current, |idx, current| {
        let window = idx.config.window.max(2);
        current
            .chunks(window)
            .map(|members| plan_window(&idx.nodes, members))
            .collect()
    });
}

/// One leaf of the forest (Algorithm 1 line 2): full pattern, the code
/// itself, and the tuple ids (kept only when the config says so).
fn leaf_node(keep_ids: bool, code: &BinaryCode, ids: &[TupleId]) -> Node {
    let stored_ids = if keep_ids { ids.to_vec() } else { Vec::new() };
    Node::leaf(
        MaskedCode::full(code.clone()),
        code.clone(),
        stored_ids,
        ids.len() as u32,
    )
}

/// What one window of an extraction level resolved to. Planning a window
/// only *reads* the arena, so any number of windows can be planned
/// concurrently; every order-sensitive effect lives in [`apply_level`].
enum WindowPlan {
    /// A lone trailing node just rides up to the next level.
    Ride,
    /// No shared FLSSeq: members link to the top level (line 16).
    TopLevel,
    /// The window shares `common`; members keep only their residual bits
    /// (line 5's child update).
    Extract {
        common: MaskedCode,
        residuals: Vec<MaskedCode>,
        frequency: u32,
    },
}

/// Analyses one window: the maximal shared FLSSeq and, when it is
/// non-vacuous, the members' residual patterns and summed frequency.
fn plan_window(nodes: &[Node], members: &[NodeId]) -> WindowPlan {
    if members.len() == 1 {
        return WindowPlan::Ride;
    }
    let common = MaskedCode::common_of(members.iter().map(|&n| &nodes[n as usize].pattern))
        .expect("non-empty window");
    if common.is_vacuous() {
        return WindowPlan::TopLevel;
    }
    let residuals = members
        .iter()
        .map(|&n| nodes[n as usize].pattern.subtract(common.mask()))
        .collect();
    let frequency = members.iter().map(|&n| nodes[n as usize].frequency).sum();
    WindowPlan::Extract {
        common,
        residuals,
        frequency,
    }
}

/// Runs the extraction levels over the leaf level `current`, obtaining each
/// level's window plans from `plan_level` and applying them in window
/// order. Both the sequential and the parallel H-Build funnel through this
/// one apply pass, so their arenas come out identical.
fn extract_levels(
    idx: &mut DynamicHaIndex,
    mut current: Vec<NodeId>,
    plan_level: impl Fn(&DynamicHaIndex, &[NodeId]) -> Vec<WindowPlan>,
) {
    let max_depth = idx.config.max_depth.max(1);
    for _depth in 0..max_depth {
        if current.len() <= 1 {
            break;
        }
        let plans = plan_level(idx, &current);
        let next = apply_level(idx, &current, plans);
        if next.is_empty() {
            current = next;
            break;
        }
        current = next;
    }
    idx.roots.extend(current);
}

/// Applies one level's window plans: mutates member patterns to their
/// residuals, consolidates pattern-equal parents (lines 6–11) and
/// allocates new parents in window order.
fn apply_level(
    idx: &mut DynamicHaIndex,
    current: &[NodeId],
    plans: Vec<WindowPlan>,
) -> Vec<NodeId> {
    let window = idx.config.window.max(2);
    let mut next: Vec<NodeId> = Vec::new();
    // Consolidation map for this level (lines 6–11).
    let mut intern: HashMap<MaskedCode, NodeId> = HashMap::with_capacity(plans.len());
    for (chunk, plan) in current.chunks(window).zip(plans) {
        match plan {
            WindowPlan::Ride => next.push(chunk[0]),
            WindowPlan::TopLevel => idx.roots.extend_from_slice(chunk),
            WindowPlan::Extract {
                common,
                residuals,
                frequency,
            } => {
                for (&member, residual) in chunk.iter().zip(residuals) {
                    idx.nodes[member as usize].pattern = residual;
                }
                match intern.entry(common) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let pid = *e.get();
                        let parent = &mut idx.nodes[pid as usize];
                        parent.children.extend_from_slice(chunk);
                        parent.frequency += frequency;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let mut parent = Node::internal(e.key().clone());
                        parent.children.extend_from_slice(chunk);
                        parent.frequency = frequency;
                        let pid = alloc_raw(&mut idx.nodes, parent);
                        e.insert(pid);
                        next.push(pid);
                    }
                }
            }
        }
    }
    next
}

/// Items per fork-join task — small enough that trailing tasks keep every
/// worker busy, large enough that the per-task channel send is noise.
const PAR_TASK: usize = 2048;

/// Parallel H-Build, byte-identical to the sequential [`h_build`].
///
/// The sequential algorithm's only order-sensitive effects are arena
/// allocation and per-level parent consolidation — both cheap. Everything
/// expensive is a pure function of data that exists before the pass needs
/// it: Gray ranks (per code), leaf nodes (per distinct code), and each
/// level's window analysis (per window; windows partition the level, and
/// planning only reads patterns written by the *previous* level). Those
/// three run on a scoped worker pool; the apply pass is the very code the
/// sequential build runs, so the arenas come out identical for every
/// worker count.
///
/// (The coarser split — chunk the sorted input, H-Build each chunk, fold
/// with the §5.2 merge — was tried and rejected: the merge consolidates
/// top-down by pattern equality, which preserves *answers* but not the
/// arena layout, because sequential windows and consolidation cross chunk
/// boundaries. Byte-identity is the property the freeze/serialize stack
/// leans on, so it wins.)
pub(super) fn h_build_parallel(
    items: impl IntoIterator<Item = (BinaryCode, TupleId)>,
    config: DhaConfig,
    workers: usize,
) -> DynamicHaIndex {
    let items: Vec<(BinaryCode, TupleId)> = items.into_iter().collect();
    let code_len = items.first().map_or(0, |(c, _)| c.len());
    let mut idx = DynamicHaIndex::empty(code_len, config);
    idx.len = items.len();
    if items.is_empty() {
        return idx;
    }
    let workers = workers.max(1);

    // Gray ranks, one per input tuple (Algorithm 1 line 1), in parallel.
    let ranks: Vec<BinaryCode> = fork_join(&items, PAR_TASK, workers, |slice| {
        slice
            .iter()
            .map(|(code, _)| {
                assert_eq!(code.len(), code_len, "mixed code lengths");
                gray_rank(code)
            })
            .collect()
    });

    // Sort tuple indices by (rank, input position). The rank is a
    // bijection, so equal ranks mean equal codes and the position
    // tiebreak keeps each code's ids in input order — exactly the order
    // `gray_grouped` produces.
    let order = sorted_indices(&ranks, workers);

    // Group adjacent equal codes into the distinct-code runs.
    let mut distinct: Vec<(BinaryCode, Vec<TupleId>)> = Vec::new();
    for &i in &order {
        let (code, id) = &items[i as usize];
        match distinct.last_mut() {
            Some((last, ids)) if last == code => ids.push(*id),
            _ => distinct.push((code.clone(), vec![*id])),
        }
    }
    drop(items);

    // Leaf level, constructed in parallel and appended in order.
    let keep_ids = idx.config.keep_leaf_ids;
    let leaves: Vec<Node> = fork_join(&distinct, PAR_TASK, workers, |slice| {
        slice
            .iter()
            .map(|(code, ids)| leaf_node(keep_ids, code, ids))
            .collect()
    });
    let mut current: Vec<NodeId> = Vec::with_capacity(distinct.len());
    if keep_ids {
        idx.leaves.reserve(distinct.len());
    }
    for (i, (code, _)) in distinct.iter().enumerate() {
        let nid = i as NodeId;
        if keep_ids {
            idx.leaves.insert(code.clone(), nid);
        }
        current.push(nid);
    }
    idx.nodes = leaves;

    // Extraction levels: windows planned in parallel, applied in order.
    extract_levels(&mut idx, current, |idx, current| {
        let window = idx.config.window.max(2);
        let bounds: Vec<(usize, usize)> = (0..current.len())
            .step_by(window)
            .map(|lo| (lo, (lo + window).min(current.len())))
            .collect();
        fork_join(&bounds, PAR_TASK / 8, workers, |slice| {
            slice
                .iter()
                .map(|&(lo, hi)| plan_window(&idx.nodes, &current[lo..hi]))
                .collect()
        })
    });
    idx
}

/// Indices `0..keys.len()` sorted by `(keys[i], i)`: contiguous runs are
/// sorted on scoped threads, then folded with pairwise merge rounds (each
/// round merges disjoint pairs concurrently). The comparator is a strict
/// total order, so the merged result does not depend on the run grid or
/// the merge schedule.
fn sorted_indices(keys: &[BinaryCode], workers: usize) -> Vec<u32> {
    let n = keys.len();
    let by_key = |a: &u32, b: &u32| {
        keys[*a as usize]
            .cmp(&keys[*b as usize])
            .then(a.cmp(b))
    };
    let mut order: Vec<u32> = (0..n as u32).collect();
    let run_len = n.div_ceil(workers).max(PAR_TASK);
    if workers <= 1 || n <= run_len {
        order.sort_unstable_by(by_key);
        return order;
    }
    std::thread::scope(|scope| {
        for run in order.chunks_mut(run_len) {
            scope.spawn(move || run.sort_unstable_by(by_key));
        }
    });
    let mut runs: Vec<Vec<u32>> = order.chunks(run_len).map(<[u32]>::to_vec).collect();
    while runs.len() > 1 {
        let mut paired = runs.into_iter();
        let mut round: Vec<(Vec<u32>, Option<Vec<u32>>)> = Vec::new();
        while let Some(a) = paired.next() {
            round.push((a, paired.next()));
        }
        runs = std::thread::scope(|scope| {
            let handles: Vec<_> = round
                .into_iter()
                .map(|(a, b)| scope.spawn(move || merge_sorted(a, b, by_key)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("merge thread panicked"))
                .collect()
        });
    }
    runs.pop().unwrap_or_default()
}

/// Two-pointer merge of two sorted runs (the second may be absent when a
/// round has an odd run out).
fn merge_sorted(
    a: Vec<u32>,
    b: Option<Vec<u32>>,
    by_key: impl Fn(&u32, &u32) -> std::cmp::Ordering,
) -> Vec<u32> {
    let Some(b) = b else { return a };
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if by_key(&a[i], &b[j]).is_lt() {
            merged.push(a[i]);
            i += 1;
        } else {
            merged.push(b[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&a[i..]);
    merged.extend_from_slice(&b[j..]);
    merged
}

/// Scoped fork-join over contiguous `chunk`-sized tasks: applies `f` to
/// each task on up to `workers` threads (work-stealing over
/// [`ha_bitcode::pool::fan_out`]'s shared cursor) and returns the
/// concatenated results **in task order** — task *assignment* varies
/// with scheduling, the output never does.
fn fork_join<T: Sync, R: Send>(
    items: &[T],
    chunk: usize,
    workers: usize,
    f: impl Fn(&[T]) -> Vec<R> + Sync,
) -> Vec<R> {
    let tasks: Vec<&[T]> = items.chunks(chunk.max(1)).collect();
    ha_bitcode::pool::fan_out(workers, tasks.len(), |i| f(tasks[i]))
        .into_iter()
        .flatten()
        .collect()
}

fn alloc(idx: &mut DynamicHaIndex, node: Node) -> NodeId {
    alloc_raw(&mut idx.nodes, node)
}

pub(super) fn alloc_raw(nodes: &mut Vec<Node>, node: Node) -> NodeId {
    let id = nodes.len() as NodeId;
    nodes.push(node);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{clustered_dataset, paper_table_s, random_dataset};
    use crate::HammingIndex;

    #[test]
    fn build_paper_example_and_check_invariants() {
        let idx = DynamicHaIndex::build(paper_table_s());
        idx.check_invariants();
        assert_eq!(idx.len(), 8);
        assert_eq!(idx.leaf_count(), 8);
        assert!(idx.internal_node_count() >= 1, "some sharing must occur");
    }

    #[test]
    fn build_with_small_window_mimics_figure_3() {
        // Window of 2 over the Gray-sorted running example: adjacent pairs
        // (t0-like neighbours) must share parents, giving a multi-level
        // forest like Figure 3.
        let idx = DynamicHaIndex::build_with(
            paper_table_s(),
            DhaConfig {
                window: 2,
                max_depth: 4,
                ..DhaConfig::default()
            },
        );
        idx.check_invariants();
        assert!(idx.depth() >= 2, "depth {}", idx.depth());
        assert!(idx.internal_node_count() >= 3);
    }

    #[test]
    fn build_groups_duplicate_codes_into_one_leaf() {
        let c: BinaryCode = "10101010".parse().unwrap();
        let d: BinaryCode = "10101011".parse().unwrap();
        let idx = DynamicHaIndex::build([
            (c.clone(), 1),
            (c.clone(), 2),
            (d.clone(), 3),
        ]);
        idx.check_invariants();
        assert_eq!(idx.leaf_count(), 2, "two distinct codes");
        assert_eq!(idx.len(), 3, "three tuples");
        // Frequencies: the duplicate leaf counts 2.
        let leaf = idx.leaves[&c];
        assert_eq!(idx.nodes[leaf as usize].frequency, 2);
    }

    #[test]
    fn depth_respects_max_depth() {
        let data = clustered_dataset(500, 32, 4, 2, 3);
        for md in [1usize, 2, 4] {
            let idx = DynamicHaIndex::build_with(
                data.clone(),
                DhaConfig {
                    window: 4,
                    max_depth: md,
                    ..DhaConfig::default()
                },
            );
            idx.check_invariants();
            assert!(
                idx.depth() <= md + 1,
                "max_depth {md} produced depth {}",
                idx.depth()
            );
        }
    }

    #[test]
    fn empty_build() {
        let idx = DynamicHaIndex::build(std::iter::empty());
        assert!(idx.is_empty());
        assert_eq!(idx.leaf_count(), 0);
    }

    #[test]
    fn leafless_build_keeps_counts_not_ids() {
        let data = random_dataset(100, 32, 44);
        let idx = DynamicHaIndex::build_with(
            data,
            DhaConfig {
                keep_leaf_ids: false,
                ..DhaConfig::default()
            },
        );
        idx.check_invariants();
        assert_eq!(idx.len(), 100);
        assert!(idx.leaves.is_empty(), "no leaf hash table in leafless mode");
        // Memory split: payload (ids + hash table) must be tiny.
        let report = idx.memory_report();
        assert!(report.payload_bytes < report.structure_bytes);
    }

    #[test]
    fn clustered_data_builds_fewer_internal_nodes_than_leaves() {
        let data = clustered_dataset(2000, 32, 8, 2, 5);
        let idx = DynamicHaIndex::build(data);
        idx.check_invariants();
        assert!(
            idx.internal_node_count() < idx.leaf_count(),
            "internal {} vs leaves {}",
            idx.internal_node_count(),
            idx.leaf_count()
        );
    }

    #[test]
    fn uniform_random_data_still_valid() {
        let data = random_dataset(1000, 64, 91);
        let idx = DynamicHaIndex::build(data);
        idx.check_invariants();
        assert_eq!(idx.leaf_count(), 1000); // collisions vanishingly unlikely
    }

    #[test]
    fn parallel_build_byte_identical_to_sequential() {
        // Enough distinct codes for several PAR_TASK tasks per pass.
        let data = clustered_dataset(6000, 32, 10, 3, 13);
        let reference = DynamicHaIndex::build(data.clone());
        reference.check_invariants();
        let bytes = reference.to_bytes();
        for workers in [1usize, 2, 4, 8] {
            let par = DynamicHaIndex::build_parallel(data.clone(), workers);
            par.check_invariants();
            assert_eq!(par.epoch(), 0, "fresh build starts at epoch 0");
            assert_eq!(
                par.to_bytes(),
                bytes,
                "workers={workers} must reproduce the sequential build"
            );
        }
    }

    #[test]
    fn parallel_build_byte_identical_in_leafless_mode() {
        let data = clustered_dataset(3000, 32, 6, 3, 17);
        let config = DhaConfig {
            keep_leaf_ids: false,
            window: 4,
            ..DhaConfig::default()
        };
        let seq = DynamicHaIndex::build_with(data.clone(), config.clone());
        let par = DynamicHaIndex::build_parallel_with(data, config, 4);
        par.check_invariants();
        assert_eq!(seq.to_bytes(), par.to_bytes());
    }

    #[test]
    fn parallel_build_answers_like_sequential_build() {
        use crate::testkit::assert_matches_oracle;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let data = clustered_dataset(3000, 64, 8, 3, 19);
        let par = DynamicHaIndex::build_parallel(data.clone(), 4);
        par.check_invariants();
        assert_eq!(par.len(), data.len());
        let mut rng = StdRng::seed_from_u64(20);
        for h in [0u32, 3, 6] {
            let q = ha_bitcode::BinaryCode::random(64, &mut rng);
            assert_matches_oracle(par.search(&q, h), &data, &q, h, "parallel-build");
        }
    }

    #[test]
    fn parallel_build_small_and_empty_inputs() {
        let empty = DynamicHaIndex::build_parallel(std::iter::empty(), 8);
        assert!(empty.is_empty());
        // A sub-task input takes the single-threaded fork-join path and
        // still equals the plain sequential H-Build.
        let data = random_dataset(50, 16, 23);
        let seq = DynamicHaIndex::build(data.clone());
        let par = DynamicHaIndex::build_parallel(data, 8);
        assert_eq!(seq.to_bytes(), par.to_bytes());
    }
}
