//! H-Build (Algorithm 1): bulk-loading the Dynamic HA-Index.
//!
//! 1. Group tuples by distinct code and sort the codes in **Gray order**
//!    (non-decreasing Gray rank) so neighbours share long FLSSeqs.
//! 2. Slide a `w`-slot window over the current level; each window's members
//!    either share a non-vacuous maximal FLSSeq — which becomes their
//!    parent, the members keeping only residual bits — or they are linked
//!    to the top level of the index directly (Algorithm 1 line 16).
//! 3. Parents with identical patterns are consolidated into one node with
//!    summed frequency (lines 6–11).
//! 4. Repeat on the freshly created parents until the requested depth is
//!    reached or no further sharing exists; whatever remains forms the top
//!    level.

use std::collections::HashMap;

use ha_bitcode::gray::gray_rank;
use ha_bitcode::{BinaryCode, MaskedCode};

use super::{DhaConfig, DynamicHaIndex, Node, NodeId};
use crate::TupleId;

pub(super) fn h_build(
    items: impl IntoIterator<Item = (BinaryCode, TupleId)>,
    config: DhaConfig,
) -> DynamicHaIndex {
    // Group by distinct code.
    let mut groups: HashMap<BinaryCode, Vec<TupleId>> = HashMap::new();
    let mut total = 0usize;
    let mut code_len = 0usize;
    for (code, id) in items {
        if code_len == 0 {
            code_len = code.len();
        } else {
            assert_eq!(code.len(), code_len, "mixed code lengths");
        }
        groups.entry(code).or_default().push(id);
        total += 1;
    }

    let mut idx = DynamicHaIndex::empty(code_len, config);
    idx.len = total;
    if total == 0 {
        return idx;
    }

    // Gray-order the distinct codes (Algorithm 1 line 1).
    let mut distinct: Vec<(BinaryCode, Vec<TupleId>)> = groups.into_iter().collect();
    distinct.sort_by_cached_key(|(c, _)| gray_rank(c));

    // Leaf level.
    let mut current: Vec<NodeId> = Vec::with_capacity(distinct.len());
    for (code, ids) in distinct {
        let frequency = ids.len() as u32;
        let pattern = MaskedCode::full(code.clone());
        let stored_ids = if idx.config.keep_leaf_ids { ids } else { Vec::new() };
        let nid = alloc(&mut idx, Node::leaf(pattern, code.clone(), stored_ids, frequency));
        if idx.config.keep_leaf_ids {
            idx.leaves.insert(code, nid);
        }
        current.push(nid);
    }

    // Extraction levels (lines 3–24).
    let window = idx.config.window.max(2);
    let max_depth = idx.config.max_depth.max(1);
    for _depth in 0..max_depth {
        if current.len() <= 1 {
            break;
        }
        let mut next: Vec<NodeId> = Vec::new();
        // Consolidation map for this level (lines 6–11).
        let mut intern: HashMap<MaskedCode, NodeId> = HashMap::new();
        let mut chunk_start = 0usize;
        while chunk_start < current.len() {
            let chunk = &current[chunk_start..(chunk_start + window).min(current.len())];
            chunk_start += window;
            if chunk.len() == 1 {
                // A lone trailing node just rides up to the next level.
                next.push(chunk[0]);
                continue;
            }
            let common = MaskedCode::common_of(
                chunk.iter().map(|&n| &idx.nodes[n as usize].pattern),
            )
            .expect("non-empty chunk");
            if common.is_vacuous() {
                // No shared FLSSeq: link members to the top level
                // (line 16).
                idx.roots.extend_from_slice(chunk);
                continue;
            }
            // Members keep only residual bits (line 5's child update).
            let chunk_freq: u32 = chunk
                .iter()
                .map(|&n| idx.nodes[n as usize].frequency)
                .sum();
            for &member in chunk {
                let node = &mut idx.nodes[member as usize];
                node.pattern = node.pattern.subtract(common.mask());
            }
            match intern.entry(common.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let pid = *e.get();
                    let parent = &mut idx.nodes[pid as usize];
                    parent.children.extend_from_slice(chunk);
                    parent.frequency += chunk_freq;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    let mut parent = Node::internal(common);
                    parent.children.extend_from_slice(chunk);
                    parent.frequency = chunk_freq;
                    let pid = alloc_raw(&mut idx.nodes, parent);
                    e.insert(pid);
                    next.push(pid);
                }
            }
        }
        if next.is_empty() {
            current = next;
            break;
        }
        current = next;
    }
    idx.roots.extend(current);
    idx
}

fn alloc(idx: &mut DynamicHaIndex, node: Node) -> NodeId {
    alloc_raw(&mut idx.nodes, node)
}

pub(super) fn alloc_raw(nodes: &mut Vec<Node>, node: Node) -> NodeId {
    let id = nodes.len() as NodeId;
    nodes.push(node);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{clustered_dataset, paper_table_s, random_dataset};
    use crate::HammingIndex;

    #[test]
    fn build_paper_example_and_check_invariants() {
        let idx = DynamicHaIndex::build(paper_table_s());
        idx.check_invariants();
        assert_eq!(idx.len(), 8);
        assert_eq!(idx.leaf_count(), 8);
        assert!(idx.internal_node_count() >= 1, "some sharing must occur");
    }

    #[test]
    fn build_with_small_window_mimics_figure_3() {
        // Window of 2 over the Gray-sorted running example: adjacent pairs
        // (t0-like neighbours) must share parents, giving a multi-level
        // forest like Figure 3.
        let idx = DynamicHaIndex::build_with(
            paper_table_s(),
            DhaConfig {
                window: 2,
                max_depth: 4,
                ..DhaConfig::default()
            },
        );
        idx.check_invariants();
        assert!(idx.depth() >= 2, "depth {}", idx.depth());
        assert!(idx.internal_node_count() >= 3);
    }

    #[test]
    fn build_groups_duplicate_codes_into_one_leaf() {
        let c: BinaryCode = "10101010".parse().unwrap();
        let d: BinaryCode = "10101011".parse().unwrap();
        let idx = DynamicHaIndex::build([
            (c.clone(), 1),
            (c.clone(), 2),
            (d.clone(), 3),
        ]);
        idx.check_invariants();
        assert_eq!(idx.leaf_count(), 2, "two distinct codes");
        assert_eq!(idx.len(), 3, "three tuples");
        // Frequencies: the duplicate leaf counts 2.
        let leaf = idx.leaves[&c];
        assert_eq!(idx.nodes[leaf as usize].frequency, 2);
    }

    #[test]
    fn depth_respects_max_depth() {
        let data = clustered_dataset(500, 32, 4, 2, 3);
        for md in [1usize, 2, 4] {
            let idx = DynamicHaIndex::build_with(
                data.clone(),
                DhaConfig {
                    window: 4,
                    max_depth: md,
                    ..DhaConfig::default()
                },
            );
            idx.check_invariants();
            assert!(
                idx.depth() <= md + 1,
                "max_depth {md} produced depth {}",
                idx.depth()
            );
        }
    }

    #[test]
    fn empty_build() {
        let idx = DynamicHaIndex::build(std::iter::empty());
        assert!(idx.is_empty());
        assert_eq!(idx.leaf_count(), 0);
    }

    #[test]
    fn leafless_build_keeps_counts_not_ids() {
        let data = random_dataset(100, 32, 44);
        let idx = DynamicHaIndex::build_with(
            data,
            DhaConfig {
                keep_leaf_ids: false,
                ..DhaConfig::default()
            },
        );
        idx.check_invariants();
        assert_eq!(idx.len(), 100);
        assert!(idx.leaves.is_empty(), "no leaf hash table in leafless mode");
        // Memory split: payload (ids + hash table) must be tiny.
        let report = idx.memory_report();
        assert!(report.payload_bytes < report.structure_bytes);
    }

    #[test]
    fn clustered_data_builds_fewer_internal_nodes_than_leaves() {
        let data = clustered_dataset(2000, 32, 8, 2, 5);
        let idx = DynamicHaIndex::build(data);
        idx.check_invariants();
        assert!(
            idx.internal_node_count() < idx.leaf_count(),
            "internal {} vs leaves {}",
            idx.internal_node_count(),
            idx.leaf_count()
        );
    }

    #[test]
    fn uniform_random_data_still_valid() {
        let data = random_dataset(1000, 64, 91);
        let idx = DynamicHaIndex::build(data);
        idx.check_invariants();
        assert_eq!(idx.leaf_count(), 1000); // collisions vanishingly unlikely
    }
}
