//! The Dynamic HA-Index (§4.4–4.7) — the paper's primary contribution.
//!
//! Codes are sorted in **Gray order** (clustering property, Prop. 2) and a
//! sliding window extracts the maximal **FLSSeq** each window shares; the
//! shared pattern becomes a parent node and the members keep only their
//! *residual* bits. Repeating the extraction level by level yields a forest
//! whose key invariant is:
//!
//! > Along every root-to-leaf path, node patterns have pairwise **disjoint
//! > masks whose union covers all L bit positions** — so the sum of masked
//! > distances along a path is the *exact* Hamming distance of the leaf
//! > code, and any prefix sum is a lower bound (Prop. 1, downward closure).
//!
//! [`search`](DynamicHaIndex::search) (H-Search, Algorithm 3) walks the
//! forest breadth-first, pruning a whole subtree the moment its accumulated
//! lower bound exceeds the threshold. Build, insert, delete and merge live
//! in the sibling modules:
//!
//! * `build` — H-Build (Algorithm 1), bulk loading;
//! * `search` — H-Search plus the execution-trace variant behind Table 3;
//! * `maintain` — H-Insert / H-Delete (Algorithm 2) and the insert buffer;
//! * `merge` — combining per-partition indexes into the global HA-Index
//!   used by the MapReduce join (§5.2).

mod build;
mod flat;
mod maintain;
mod merge;
mod node;
mod search;
mod serialize;

pub use flat::{FlatHaIndex, FreezePolicy};
pub use search::{TraceEvent, TraceStep};
pub use serialize::DecodeError;

use std::collections::HashMap;

use ha_bitcode::BinaryCode;

use crate::memory::{map_bytes, vec_bytes, MemoryReport};
use crate::{HammingIndex, MutableIndex, TupleId};

pub(crate) use node::{Node, NodeId};

/// Tuning knobs of the Dynamic HA-Index (the Figure 8 parameters).
#[derive(Clone, Debug)]
pub struct DhaConfig {
    /// Sliding-window size `w` of H-Build: how many adjacent (in Gray
    /// order) nodes are examined for a shared FLSSeq per window.
    pub window: usize,
    /// Maximum index depth `md`: number of extraction levels above the
    /// leaves.
    pub max_depth: usize,
    /// Keep per-leaf tuple-id lists (the leaf hash table of §4.5). The
    /// leafless variant (`false`) is Option B of the MapReduce join: search
    /// returns qualifying *codes* and ids are resolved by a post-join.
    pub keep_leaf_ids: bool,
    /// H-Insert buffers codes that share no FLSSeq with an existing leaf;
    /// when the buffer reaches this size it is bulk-built and merged in.
    pub insert_buffer_cap: usize,
}

impl Default for DhaConfig {
    fn default() -> Self {
        DhaConfig {
            window: 8,
            max_depth: 8,
            keep_leaf_ids: true,
            insert_buffer_cap: 256,
        }
    }
}

/// The Dynamic HA-Index.
#[derive(Clone, Debug)]
pub struct DynamicHaIndex {
    pub(crate) code_len: usize,
    pub(crate) nodes: Vec<Node>,
    /// Top-level entries of the forest (Algorithm 3 starts here).
    pub(crate) roots: Vec<NodeId>,
    /// Distinct full code → leaf node (the leaf hash table; present iff
    /// `config.keep_leaf_ids`).
    pub(crate) leaves: HashMap<BinaryCode, NodeId>,
    /// Pending inserts not yet reflected in the tree (searched linearly).
    pub(crate) buffer: Vec<(BinaryCode, TupleId)>,
    pub(crate) config: DhaConfig,
    pub(crate) len: usize,
    /// Mutation epoch: bumped by every successful H-Insert / H-Delete /
    /// buffer flush / merge. Serving layers key result-cache validity on
    /// this counter — two searches at the same epoch are guaranteed to see
    /// the same result set, so a cached answer tagged with the epoch it
    /// was computed at can be reused exactly until the next mutation.
    pub(crate) epoch: u64,
    /// Frozen search snapshot compiled by [`DynamicHaIndex::freeze`];
    /// consulted by every search entry point while its epoch still matches
    /// `epoch`, silently bypassed (arena BFS) once a mutation lands.
    pub(crate) flat: Option<FlatHaIndex>,
}

impl DynamicHaIndex {
    /// Bulk-loads with the default configuration (H-Build).
    ///
    /// ```
    /// use ha_core::{DynamicHaIndex, HammingIndex};
    /// use ha_bitcode::BinaryCode;
    ///
    /// // The paper's running example (Table 2a)…
    /// let codes: Vec<(BinaryCode, u64)> = [
    ///     "001001010", "001011101", "011001100", "101001010",
    ///     "101110110", "101011101", "101101010", "111001100",
    /// ].iter().enumerate().map(|(i, s)| (s.parse().unwrap(), i as u64)).collect();
    /// let index = DynamicHaIndex::build(codes);
    ///
    /// // …answers Example 1: Hamming-select with q = 101100010, h = 3.
    /// let query: BinaryCode = "101100010".parse().unwrap();
    /// let mut hits = index.search(&query, 3);
    /// hits.sort_unstable();
    /// assert_eq!(hits, vec![0, 3, 4, 6]);
    /// ```
    pub fn build(items: impl IntoIterator<Item = (BinaryCode, TupleId)>) -> Self {
        Self::build_with(items, DhaConfig::default())
    }

    /// Bulk-loads with an explicit configuration.
    pub fn build_with(
        items: impl IntoIterator<Item = (BinaryCode, TupleId)>,
        config: DhaConfig,
    ) -> Self {
        build::h_build(items, config)
    }

    /// Parallel H-Build with the default configuration: Gray ranking, leaf
    /// construction and each extraction level's window analysis (shared
    /// FLSSeq + residual patterns) run on a pool of `workers` scoped
    /// threads; only the cheap order-sensitive apply pass (arena
    /// allocation, per-level consolidation) stays sequential, and it is the
    /// very same code the sequential H-Build runs. The output is therefore
    /// **byte-identical to [`DynamicHaIndex::build`] for every worker
    /// count** — `workers` buys wall-clock time, nothing else.
    ///
    /// ```
    /// use ha_core::DynamicHaIndex;
    /// use ha_bitcode::BinaryCode;
    ///
    /// let items: Vec<_> =
    ///     (0..4096u64).map(|i| (BinaryCode::from_u64(i.wrapping_mul(2654435761) % 65536, 16), i)).collect();
    /// let seq = DynamicHaIndex::build(items.clone());
    /// let par = DynamicHaIndex::build_parallel(items, 4);
    /// assert_eq!(seq.to_bytes(), par.to_bytes());
    /// ```
    pub fn build_parallel(
        items: impl IntoIterator<Item = (BinaryCode, TupleId)>,
        workers: usize,
    ) -> Self {
        build::h_build_parallel(items, DhaConfig::default(), workers)
    }

    /// Parallel H-Build with an explicit configuration
    /// (see [`DynamicHaIndex::build_parallel`]).
    pub fn build_parallel_with(
        items: impl IntoIterator<Item = (BinaryCode, TupleId)>,
        config: DhaConfig,
        workers: usize,
    ) -> Self {
        build::h_build_parallel(items, config, workers)
    }

    /// Empty index for `code_len`-bit codes.
    pub fn empty(code_len: usize, config: DhaConfig) -> Self {
        DynamicHaIndex {
            code_len,
            nodes: Vec::new(),
            roots: Vec::new(),
            leaves: HashMap::new(),
            buffer: Vec::new(),
            config,
            len: 0,
            epoch: 0,
            flat: None,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DhaConfig {
        &self.config
    }

    /// Mutation epoch of the index: 0 at construction, incremented by every
    /// successful [`MutableIndex::insert`] / [`MutableIndex::delete`],
    /// buffer [`flush`](DynamicHaIndex::flush), and
    /// [`merge_from`](DynamicHaIndex::merge_from). Searches at equal epochs
    /// observe identical contents, which is what makes epoch-tagged result
    /// caching (the HA-Serve layer) exact rather than best-effort.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Iterates every stored `(code, id)` pair: the leaf id lists plus the
    /// insert buffer. Yields nothing useful for a leafless index (Option B
    /// drops the ids) — callers re-sharding an index should check
    /// [`DhaConfig::keep_leaf_ids`] first.
    pub fn items(&self) -> impl Iterator<Item = (BinaryCode, TupleId)> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .filter_map(|n| n.leaf.as_ref())
            .flat_map(|leaf| leaf.ids.iter().map(move |&id| (leaf.code.clone(), id)))
            .chain(self.buffer.iter().cloned())
    }

    /// Shared-frontier batched H-Search: answers every query of the batch
    /// in **one** traversal of the forest. Each BFS entry carries the set
    /// of queries still alive at that node, so a node's pattern is fetched
    /// and its children iterated once per *batch* instead of once per
    /// query — the serving-layer analogue of the paper's "one masked
    /// Hamming computation verifies many tuples" amortization. Returns,
    /// per query (by position), the qualifying ids, in the same set as
    /// [`HammingIndex::search`] would produce query by query.
    ///
    /// ```
    /// use ha_core::{DynamicHaIndex, HammingIndex};
    /// use ha_bitcode::BinaryCode;
    ///
    /// let index = DynamicHaIndex::build(
    ///     (0..64u64).map(|i| (BinaryCode::from_u64(i, 16), i)));
    /// let queries: Vec<BinaryCode> =
    ///     (0..8u64).map(|i| BinaryCode::from_u64(i * 3, 16)).collect();
    ///
    /// // One traversal for the whole batch ≡ one search per query.
    /// let batched = index.batch_search(&queries, 2);
    /// for (q, mut got) in queries.iter().zip(batched) {
    ///     let mut solo = index.search(q, 2);
    ///     got.sort_unstable();
    ///     solo.sort_unstable();
    ///     assert_eq!(got, solo);
    /// }
    /// ```
    pub fn batch_search(&self, queries: &[BinaryCode], h: u32) -> Vec<Vec<TupleId>> {
        if let Some(f) = self.flat() {
            return f.batch_search(queries, h);
        }
        search::h_batch_search(self, queries, h)
    }

    /// Number of live internal (non-leaf) nodes — |V| of the §4.7 analysis.
    pub fn internal_node_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.alive && n.leaf.is_none())
            .count()
    }

    /// Number of live leaf nodes (distinct codes).
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.alive && n.leaf.is_some())
            .count()
    }

    /// Depth of the forest (longest root-to-leaf path, in edges).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: NodeId) -> usize {
            let n = &nodes[id as usize];
            1 + n
                .children
                .iter()
                .map(|&c| depth_of(nodes, c))
                .max()
                .unwrap_or(0)
        }
        self.roots
            .iter()
            .map(|&r| depth_of(&self.nodes, r))
            .max()
            .unwrap_or(0)
    }

    /// Search returning the qualifying distinct **codes** and their exact
    /// distances — works in both leafy and leafless modes (Option B of the
    /// MapReduce join resolves ids afterwards).
    pub fn search_codes(&self, query: &BinaryCode, h: u32) -> Vec<(BinaryCode, u32)> {
        if let Some(f) = self.flat() {
            return f.search_codes(query, h);
        }
        search::h_search_codes(self, query, h)
    }

    /// Search returning `(id, exact Hamming distance)` pairs. The distance
    /// comes straight off the root-to-leaf path sum (the masks partition
    /// the bit positions), so ranking costs nothing extra — this is what
    /// the kNN layers build on.
    pub fn search_with_distances(&self, query: &BinaryCode, h: u32) -> Vec<(TupleId, u32)> {
        if let Some(f) = self.flat() {
            return f.search_with_distances(query, h);
        }
        search::h_search_with_distances(self, query, h)
    }

    /// H-Search with a recorded execution trace (the Table 3
    /// reproduction). Returns the qualifying ids plus one [`TraceStep`] per
    /// BFS round.
    pub fn search_trace(&self, query: &BinaryCode, h: u32) -> (Vec<TupleId>, Vec<TraceStep>) {
        if let Some(f) = self.flat() {
            return f.search_trace(query, h);
        }
        search::h_search_trace(self, query, h)
    }

    /// Flushes the insert buffer into the tree (also done automatically
    /// when the buffer reaches `insert_buffer_cap`).
    pub fn flush(&mut self) {
        maintain::flush_buffer(self);
    }

    /// Compiles (or revalidates) the frozen search snapshot: flushes the
    /// insert buffer, compacts dead arena slots away, and builds the
    /// CSR/SoA [`FlatHaIndex`] every search entry point will use until the
    /// next mutation. Idempotent while the epoch is unchanged.
    ///
    /// ```
    /// use ha_core::{DynamicHaIndex, HammingIndex, MutableIndex};
    /// use ha_bitcode::BinaryCode;
    ///
    /// let mut index = DynamicHaIndex::build(
    ///     (0..64u64).map(|i| (BinaryCode::from_u64(i, 16), i)));
    /// index.freeze();
    /// assert!(index.flat_is_current());
    /// let hits = index.search(&BinaryCode::from_u64(7, 16), 1); // flat path
    ///
    /// index.insert(BinaryCode::from_u64(99, 16), 99);
    /// assert!(!index.flat_is_current()); // arena path until re-frozen
    /// ```
    pub fn freeze(&mut self) -> &FlatHaIndex {
        maintain::flush_buffer(self);
        let current = self.flat.as_ref().is_some_and(|f| f.epoch() == self.epoch);
        if !current {
            let dropped = self.compact();
            ha_obs::add("core.flat.compacted_nodes", dropped as u64);
            self.flat = Some(flat::compile(self, FreezePolicy::default()));
        }
        self.flat.as_ref().expect("snapshot just installed")
    }

    /// Freezes under an explicit [`FreezePolicy`], always recompiling —
    /// unlike [`DynamicHaIndex::freeze`], which keeps a current snapshot
    /// as-is, this replaces whatever is installed so the caller can
    /// switch layouts (e.g. the DESIGN.md ablation's
    /// [`FreezePolicy::always_soa`]) without mutating the index first.
    pub fn freeze_with(&mut self, policy: FreezePolicy) -> &FlatHaIndex {
        maintain::flush_buffer(self);
        let dropped = self.compact();
        ha_obs::add("core.flat.compacted_nodes", dropped as u64);
        self.flat = Some(flat::compile(self, policy));
        self.flat.as_ref().expect("snapshot just installed")
    }

    /// Freezes (if stale) and serializes the flat snapshot into the
    /// persistent HA-Store wire format — the durable blob generational
    /// serving publishes, re-openable zero-copy via
    /// `ha_store::HaStore::open_bytes` / `open_file` with no decode step.
    pub fn write_store(&mut self) -> Vec<u8> {
        self.freeze().store_bytes()
    }

    /// Drops the frozen snapshot (if any), forcing searches back onto the
    /// arena BFS and releasing the snapshot's memory.
    pub fn thaw(&mut self) {
        self.flat = None;
    }

    /// The frozen snapshot, if one exists *and* still reflects the current
    /// epoch. This is the dispatch predicate of every search entry point.
    pub fn flat(&self) -> Option<&FlatHaIndex> {
        self.flat.as_ref().filter(|f| f.epoch() == self.epoch)
    }

    /// True if searches are currently served from the frozen layout.
    pub fn flat_is_current(&self) -> bool {
        self.flat().is_some()
    }

    /// H-Search forced onto the mutable arena's BFS, bypassing any frozen
    /// snapshot. The query planner uses these `_arena` entry points to
    /// route explicitly: the regular entry points auto-dispatch to the
    /// flat layout whenever a current snapshot exists, which would make
    /// an "Arena BFS" routing decision unobservable.
    pub fn search_arena(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        search::h_search(self, query, h)
    }

    /// [`DynamicHaIndex::search_codes`] forced onto the arena BFS.
    pub fn search_codes_arena(&self, query: &BinaryCode, h: u32) -> Vec<(BinaryCode, u32)> {
        search::h_search_codes(self, query, h)
    }

    /// [`DynamicHaIndex::search_with_distances`] forced onto the arena BFS.
    pub fn search_with_distances_arena(&self, query: &BinaryCode, h: u32) -> Vec<(TupleId, u32)> {
        search::h_search_with_distances(self, query, h)
    }

    /// [`DynamicHaIndex::batch_search`] forced onto the arena BFS.
    pub fn batch_search_arena(&self, queries: &[BinaryCode], h: u32) -> Vec<Vec<TupleId>> {
        search::h_batch_search(self, queries, h)
    }

    /// Iterates every live stored code (leaf codes plus buffered inserts),
    /// one per distinct code, **without** ids — works in leafless mode
    /// too, unlike [`DynamicHaIndex::items`]. The planner samples this to
    /// estimate dataset clusteredness.
    pub fn leaf_codes(&self) -> impl Iterator<Item = &BinaryCode> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .filter_map(|n| n.leaf.as_ref())
            .map(|leaf| &leaf.code)
            .chain(self.buffer.iter().map(|(code, _)| code))
    }

    /// Every tuple id stored at exactly `code`: the leaf's id list (with
    /// multiplicity) plus any buffered, not-yet-flushed inserts of that
    /// code. Empty when the code is absent or the index is leafless. The
    /// generational serving layer uses this for tombstone-aware reads: a
    /// delta overlay subtracts deleted `(code, id)` pairs from the frozen
    /// base at exact pair granularity.
    pub fn ids_for_code(&self, code: &BinaryCode) -> Vec<TupleId> {
        let mut ids: Vec<TupleId> = self
            .leaves
            .get(code)
            .and_then(|&leaf| self.nodes[leaf as usize].leaf.as_ref())
            .map(|l| l.ids.clone())
            .unwrap_or_default();
        ids.extend(
            self.buffer
                .iter()
                .filter(|(c, _)| c == code)
                .map(|&(_, id)| id),
        );
        ids
    }

    /// Number of dead (`!alive`) slots lingering in the arena — what the
    /// next [`DynamicHaIndex::freeze`] will compact away.
    pub fn dead_slots(&self) -> usize {
        self.nodes.iter().filter(|n| !n.alive).count()
    }

    /// Drops dead arena slots and remaps every live reference. Dead nodes
    /// are provably unreferenced by live ones (H-Delete unlinks bottom-up;
    /// merge only grafts live subtrees), so compaction is a stable filter
    /// plus id remap — the observable result set is unchanged and the
    /// epoch stays put. Returns the number of slots dropped.
    fn compact(&mut self) -> usize {
        let dead = self.dead_slots();
        if dead == 0 {
            return 0;
        }
        let mut remap = vec![NodeId::MAX; self.nodes.len()];
        let mut kept: Vec<Node> = Vec::with_capacity(self.nodes.len() - dead);
        for (i, n) in self.nodes.drain(..).enumerate() {
            if n.alive {
                remap[i] = kept.len() as NodeId;
                kept.push(n);
            }
        }
        for n in &mut kept {
            for c in &mut n.children {
                debug_assert_ne!(remap[*c as usize], NodeId::MAX, "live child of live node");
                *c = remap[*c as usize];
            }
        }
        self.nodes = kept;
        for r in &mut self.roots {
            *r = remap[*r as usize];
        }
        for v in self.leaves.values_mut() {
            *v = remap[*v as usize];
        }
        dead
    }

    /// Merges `other` into `self` (global HA-Index construction, §5.2).
    /// Non-leaf nodes with identical FLSSeq patterns are consolidated and
    /// their subtrees merged recursively, so shared patterns across
    /// partitions are verified once at query time.
    pub fn merge_from(&mut self, other: DynamicHaIndex) {
        merge::merge_into(self, other);
    }

    /// Merges a set of per-partition indexes into one global index.
    ///
    /// ```
    /// use ha_core::{DynamicHaIndex, HammingIndex};
    /// use ha_bitcode::BinaryCode;
    ///
    /// // Two partitions, built independently (the distributed H-Build)…
    /// let lo = DynamicHaIndex::build(
    ///     (0..32u64).map(|i| (BinaryCode::from_u64(i, 12), i)));
    /// let hi = DynamicHaIndex::build(
    ///     (32..64u64).map(|i| (BinaryCode::from_u64(i, 12), i)));
    ///
    /// // …merge into the global index; searches now span both.
    /// let global = DynamicHaIndex::merge_all(vec![lo, hi]);
    /// assert_eq!(global.len(), 64);
    /// let mut hits = global.search(&BinaryCode::from_u64(33, 12), 1);
    /// hits.sort_unstable();
    /// assert_eq!(hits, vec![1, 32, 33, 35, 37, 41, 49]); // one bit away
    /// ```
    ///
    /// # Panics
    /// If `parts` is empty.
    pub fn merge_all(parts: Vec<DynamicHaIndex>) -> DynamicHaIndex {
        let mut iter = parts.into_iter();
        let mut acc = iter.next().expect("merge_all needs at least one index");
        for p in iter {
            acc.merge_from(p);
        }
        acc
    }

    /// Itemized memory usage; `payload_bytes` carries the leaf id lists +
    /// leaf hash table (the part the leafless variant saves — the
    /// `28/11` style split of Table 4).
    pub fn memory_report(&self) -> MemoryReport {
        let mut structure = vec_bytes(&self.nodes) + vec_bytes(&self.roots);
        let mut codes = 0usize;
        let mut payload = map_bytes(&self.leaves);
        for n in &self.nodes {
            structure += vec_bytes(&n.children);
            codes += n.pattern.heap_bytes();
            if let Some(leaf) = &n.leaf {
                codes += leaf.code.heap_bytes();
                payload += vec_bytes(&leaf.ids);
            }
        }
        payload += self.leaves.keys().map(|c| c.heap_bytes()).sum::<usize>();
        MemoryReport {
            structure_bytes: structure,
            code_bytes: codes,
            payload_bytes: payload,
        }
    }

    /// Serialized wire size of the index — what broadcasting it through a
    /// distributed cache costs (§5.4: "the internal nodes of the HA-Index
    /// store enough binary information for the whole dataset, and hence
    /// introduce low overhead to broadcast"). Counts, per live node, the
    /// packed pattern (bits + mask), the frequency, and the child links;
    /// for leaves the packed full code; and the leaf id lists only when
    /// `include_leaf_ids` (Option A ships them, Option B does not).
    pub fn serialized_bytes(&self, include_leaf_ids: bool) -> usize {
        let code_bytes = self.code_len.div_ceil(8);
        let mut total = 0usize;
        for n in self.nodes.iter().filter(|n| n.alive) {
            total += 2 + 2 * code_bytes; // pattern: bits + mask
            total += 4; // frequency
            total += 4 * n.children.len(); // edges
            if let Some(leaf) = &n.leaf {
                total += 2 + code_bytes; // full leaf code
                if include_leaf_ids {
                    total += 8 * leaf.ids.len();
                }
            }
        }
        total += self
            .buffer
            .iter()
            .map(|(c, _)| 2 + c.len().div_ceil(8) + 8)
            .sum::<usize>();
        total
    }

    /// Fallible structural validation: every root-to-leaf chain must have
    /// disjoint masks whose union is the full bit range, and the combined
    /// pattern must reconstruct the leaf's code exactly. Used by the
    /// wire-format decoder to reject corrupt blobs without panicking.
    pub fn try_check_invariants(&self) -> Result<(), &'static str> {
        use ha_bitcode::MaskedCode;
        fn walk(
            idx: &DynamicHaIndex,
            id: NodeId,
            acc: &MaskedCode,
            depth: usize,
        ) -> Result<(), &'static str> {
            if depth > idx.nodes.len() {
                return Err("cycle in node graph");
            }
            let n = &idx.nodes[id as usize];
            if !acc.mask().is_disjoint(n.pattern.mask()) {
                return Err("path masks overlap");
            }
            let acc = acc.combine(&n.pattern);
            if let Some(leaf) = &n.leaf {
                if !n.children.is_empty() {
                    return Err("leaf with children");
                }
                if acc.mask() != &BinaryCode::ones(idx.code_len) {
                    return Err("leaf path does not cover all bits");
                }
                if acc.bits() != &leaf.code {
                    return Err("path does not spell the leaf code");
                }
            } else {
                if n.children.is_empty() {
                    return Err("dead-end internal node");
                }
                for &c in &n.children {
                    walk(idx, c, &acc, depth + 1)?;
                }
            }
            Ok(())
        }
        let empty = MaskedCode::empty(self.code_len.max(1));
        for &r in &self.roots {
            walk(self, r, &empty, 0)?;
        }
        Ok(())
    }

    /// Panicking form of [`DynamicHaIndex::try_check_invariants`], used
    /// throughout the test suite.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        if let Err(what) = self.try_check_invariants() {
            panic!("HA-Index invariant violated: {what}");
        }
    }
}

impl HammingIndex for DynamicHaIndex {
    fn name(&self) -> &'static str {
        "DHA-Index"
    }

    fn len(&self) -> usize {
        self.len + self.buffer.len()
    }

    fn code_len(&self) -> usize {
        self.code_len
    }

    fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        if let Some(f) = self.flat() {
            return f.search(query, h);
        }
        search::h_search(self, query, h)
    }

    fn memory_bytes(&self) -> usize {
        self.memory_report().total()
    }
}

impl MutableIndex for DynamicHaIndex {
    fn insert(&mut self, code: BinaryCode, id: TupleId) {
        maintain::h_insert(self, code, id);
    }

    fn delete(&mut self, code: &BinaryCode, id: TupleId) -> bool {
        maintain::h_delete(self, code, id)
    }
}
