//! `FlatHaIndex` — a frozen, cache-friendly snapshot of the Dynamic
//! HA-Index used as the hot search path.
//!
//! The mutable arena is the right shape for H-Insert/H-Delete, but H-Search
//! pays for that flexibility on every visit: a pointer chase per child
//! through an AoS `Node` (pattern + child list + leaf payload + bookkeeping
//! in one ~150-byte struct), dead slots interleaved with live ones, and one
//! scalar `MaskedCode::distance_to` per sibling. Freezing compiles the live
//! forest into three structure-of-arrays pieces:
//!
//! * **CSR adjacency** — nodes renumbered in BFS order so every sibling
//!   group is a contiguous id range; `child_start[v] .. child_start[v + 1]`
//!   indexes one flat `children` array.
//! * **SoA word-planes** — for each sibling group, pattern words are stored
//!   column-major: all siblings' *bits* word 0, all siblings' *mask* word 0,
//!   then word 1, … Pruning a whole group is then one sequential scan of
//!   contiguous memory by [`ha_bitcode::masked_distance_many`], which bails
//!   out of a sibling as soon as its accumulated distance exceeds `h` and
//!   out of the group as soon as nobody is left within budget.
//! * **Leaf SoA** — leaf codes and their tuple-id lists in two flat arrays
//!   (ids in CSR form), so reporting a hit never touches the arena.
//!
//! A snapshot is tagged with the arena's mutation epoch at compile time;
//! [`DynamicHaIndex`](super::DynamicHaIndex) dispatches searches to the
//! snapshot only while the epochs still agree, falling back to the arena
//! BFS (the oracle) after any mutation. Traversal order is identical to the
//! arena BFS, so results are byte-for-byte the same, not merely set-equal.
//!
//! Since HA-Store, the traversal itself lives in `ha-store`'s
//! [`FlatStoreView`] — the same arrays, borrowed — and this type is the
//! *owner* of those arrays plus the arena-only extras (the `parent` array
//! for trace rendering, the epoch gate). `search`/`batch_search`/… simply
//! wrap the owned vectors in a view and delegate, which is what guarantees
//! an `mmap`-ed snapshot answers byte-for-byte like a frozen one: both run
//! the identical code. [`FlatHaIndex::store_bytes`] serializes the arrays
//! into the persistent HA-Store format.

use ha_bitcode::{masked_distance_group, BinaryCode, GroupLayout, Kernel, MaskedCode};
use ha_store::{FlatParts, FlatStoreView};

use super::search::{TraceEvent, TraceStep};
use super::{DynamicHaIndex, NodeId};
use crate::memory::vec_bytes;
use crate::TupleId;

/// Sentinel for "no parent" / "not a leaf" in the flat arrays.
const NONE: u32 = u32::MAX;

/// Per-subtree layout decision applied while compiling a snapshot.
///
/// The compiler measures every sibling group's width as it renumbers
/// and asks the policy whether that group should be stored as SoA
/// word-planes (column-major: scan all siblings' word 0, then word 1,
/// …) or as AoS rows (each sibling's full `bits‖mask` row contiguous).
/// Wide groups amortize the SoA stride across many siblings and let
/// the lane kernels run branch-free; small groups of multi-word codes
/// spend more on striding than they save, and a row-major sweep with
/// per-sibling early exit wins — that crossover is exactly the 512-bit
/// sparse regression BENCH_flat pinned at 0.69×. Both layouts occupy
/// the same `2 * words * group` words at the same base offset, so the
/// choice is free at search time: one flag byte per group, recorded in
/// the HA-Store v2 format.
///
/// The default ([`FreezePolicy::adaptive`]) decides per group;
/// [`FreezePolicy::always_soa`] reproduces the pre-policy layout (and
/// is what the documented ablation in DESIGN.md runs);
/// [`FreezePolicy::always_aos`] exists for measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FreezePolicy {
    mode: PolicyMode,
    aos_max_group: usize,
    /// Kernel the frozen snapshot's views dispatch to; `None` defers to
    /// the one-time runtime probe ([`Kernel::detect`]).
    kernel: Option<Kernel>,
    /// Frontier prefetch look-ahead for the snapshot's views; `None`
    /// takes the measured default, `Some(0)` disables the hints.
    prefetch: Option<usize>,
    /// Worker threads for morsel-split frontier levels; `None` (and
    /// anything `<= 1`) keeps traversal on the calling thread.
    workers: Option<usize>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PolicyMode {
    Adaptive,
    AlwaysSoa,
    AlwaysAos,
}

impl FreezePolicy {
    /// Per-group choice: AoS for narrow groups of multi-word codes,
    /// SoA everywhere else. The default group-width threshold (16) is
    /// where the kernel sweep measured the stride cost crossing the
    /// early-exit gain; tune with [`FreezePolicy::aos_max_group`].
    pub fn adaptive() -> FreezePolicy {
        FreezePolicy {
            mode: PolicyMode::Adaptive,
            aos_max_group: 16,
            kernel: None,
            prefetch: None,
            workers: None,
        }
    }

    /// Every group SoA — the legacy layout, kept as the documented
    /// ablation and for serializing v1-compatible files.
    pub fn always_soa() -> FreezePolicy {
        FreezePolicy { aos_max_group: 0, mode: PolicyMode::AlwaysSoa, ..FreezePolicy::adaptive() }
    }

    /// Every group AoS — a measurement aid, not a serving choice.
    pub fn always_aos() -> FreezePolicy {
        FreezePolicy {
            aos_max_group: usize::MAX,
            mode: PolicyMode::AlwaysAos,
            ..FreezePolicy::adaptive()
        }
    }

    /// Adjusts the adaptive threshold: groups strictly narrower than
    /// `g` (of multi-word codes) become AoS.
    pub fn aos_max_group(mut self, g: usize) -> FreezePolicy {
        self.aos_max_group = g;
        self
    }

    /// Pins the snapshot's sweep kernel instead of deferring to the
    /// runtime probe. Every kernel computes identical distances, so
    /// this is a pure performance knob (scalar for tracing/debugging,
    /// lanes/simd for throughput).
    pub fn with_kernel(mut self, kernel: Kernel) -> FreezePolicy {
        self.kernel = Some(kernel);
        self
    }

    /// Pins the frontier prefetch look-ahead (entries ahead of the
    /// group being swept; `0` disables the hints).
    pub fn prefetch_distance(mut self, distance: usize) -> FreezePolicy {
        self.prefetch = Some(distance);
        self
    }

    /// Lets the snapshot's views split frontier levels wider than two
    /// morsels across up to `workers` scoped threads. Answers stay
    /// byte-identical at any worker count (morsel results are
    /// reassembled in frontier order).
    pub fn parallel_workers(mut self, workers: usize) -> FreezePolicy {
        self.workers = Some(workers);
        self
    }

    /// The kernel snapshots frozen under this policy dispatch to:
    /// the pinned choice, or the runtime-detected best.
    pub fn kernel(&self) -> Kernel {
        self.kernel.unwrap_or_else(Kernel::detect)
    }

    /// The frontier prefetch look-ahead snapshots frozen under this
    /// policy use.
    pub fn prefetch(&self) -> usize {
        self.prefetch.unwrap_or(ha_bitcode::prefetch::PREFETCH_DISTANCE)
    }

    /// Worker threads for morsel-split frontier levels (1 = sequential).
    pub fn workers(&self) -> usize {
        self.workers.unwrap_or(1)
    }

    /// The layout this policy assigns a `group`-wide sibling group of
    /// `words`-word patterns.
    pub fn layout_for(&self, group: usize, words: usize) -> GroupLayout {
        match self.mode {
            PolicyMode::AlwaysSoa => GroupLayout::Soa,
            PolicyMode::AlwaysAos => GroupLayout::Aos,
            PolicyMode::Adaptive => {
                if words > 1 && group < self.aos_max_group {
                    GroupLayout::Aos
                } else {
                    GroupLayout::Soa
                }
            }
        }
    }
}

impl Default for FreezePolicy {
    fn default() -> FreezePolicy {
        FreezePolicy::adaptive()
    }
}

/// Frozen search snapshot of a [`DynamicHaIndex`] (see module docs).
#[derive(Clone, Debug)]
pub struct FlatHaIndex {
    code_len: usize,
    /// `u64` words per code (`code_len.div_ceil(64)`).
    words: usize,
    /// Arena mutation epoch this snapshot was compiled at.
    epoch: u64,
    /// Indexed tuples (with multiplicity).
    len: usize,
    /// Roots occupy flat ids `0 .. root_count`.
    root_count: u32,
    /// CSR child offsets: node `v`'s children live at
    /// `children[child_start[v] .. child_start[v + 1]]`.
    child_start: Vec<u32>,
    /// Flat child ids; every sibling group is a consecutive id range.
    children: Vec<u32>,
    /// Parent of each node (`NONE` for roots) — used to recover a node's
    /// sibling-group coordinates when rendering patterns for traces.
    parent: Vec<u32>,
    /// Word-plane pattern storage: the root group first, then each internal
    /// node's child group in BFS order. The group of node `p`'s children
    /// starts at word `2 * words * (root_count + child_start[p])`.
    planes: Vec<u64>,
    /// Per node: index into the leaf arrays, or `NONE` for internal nodes.
    leaf_slot: Vec<u32>,
    /// Distinct full codes of the leaves as `words`-word rows, by leaf
    /// slot (`leaf_code_words[slot * words .. (slot + 1) * words]`).
    leaf_code_words: Vec<u64>,
    /// Leaf slots ordered by code row, lexicographically ascending — the
    /// point-lookup directory HA-Store binary-searches. (Bit 0 is the MSB
    /// of word 0, so word-row order *is* bit-string order.)
    leaf_sorted: Vec<u32>,
    /// CSR offsets into `leaf_ids`, by leaf slot.
    leaf_ids_start: Vec<u32>,
    /// Tuple ids of every leaf, concatenated.
    leaf_ids: Vec<TupleId>,
    /// Per-group layout flags (entry 0 = root group, entry `1 + p` =
    /// node `p`'s child group; leaves carry an unused `0`), length
    /// `node_count + 1`. Mirrors HA-Store v2's GROUP_LAYOUT section.
    group_layout: Vec<u8>,
    /// Sibling groups compiled, and how many of them the policy laid
    /// out row-major — the planner reads the ratio.
    groups: u32,
    aos_groups: u32,
    /// Execution knobs resolved from the freeze policy at compile time
    /// (kernel via the runtime probe unless pinned). Applied to every
    /// view the snapshot hands out; never serialized — a reopened store
    /// re-resolves for the host it runs on.
    kernel: Kernel,
    prefetch: usize,
    workers: usize,
}

/// Appends one sibling group's patterns to `planes` in the layout the
/// policy chose: SoA word-planes (column-major) or AoS rows. Both
/// occupy exactly `2 * words * group.len()` words, so downstream
/// base-offset arithmetic never depends on the choice.
fn push_group(
    planes: &mut Vec<u64>,
    idx: &DynamicHaIndex,
    group: &[NodeId],
    words: usize,
    layout: GroupLayout,
) {
    match layout {
        GroupLayout::Soa => {
            for w in 0..words {
                for &m in group {
                    planes.push(idx.nodes[m as usize].pattern.bits().words()[w]);
                }
                for &m in group {
                    planes.push(idx.nodes[m as usize].pattern.mask().words()[w]);
                }
            }
        }
        GroupLayout::Aos => {
            for &m in group {
                let pattern = &idx.nodes[m as usize].pattern;
                planes.extend_from_slice(&pattern.bits().words()[..words]);
                planes.extend_from_slice(&pattern.mask().words()[..words]);
            }
        }
    }
}

/// Compiles a snapshot from a flushed, compacted arena, laying each
/// sibling group out as `policy` directs.
///
/// Callers ([`DynamicHaIndex::freeze`](super::DynamicHaIndex::freeze)) must
/// have emptied the insert buffer and dropped dead slots first; the BFS
/// renumbering below assumes every reachable node is alive.
pub(super) fn compile(idx: &DynamicHaIndex, policy: FreezePolicy) -> FlatHaIndex {
    debug_assert!(idx.buffer.is_empty(), "freeze must flush the buffer");
    debug_assert!(idx.nodes.iter().all(|n| n.alive), "freeze must compact");
    let code_len = idx.code_len;
    let words = code_len.div_ceil(64);
    let root_count = idx.roots.len();

    // BFS renumbering: roots first, then each processed node's children
    // appended consecutively — which *is* the CSR sibling-contiguity
    // property the planes rely on.
    let mut order: Vec<NodeId> = idx.roots.clone();
    let mut planes: Vec<u64> = Vec::new();
    let mut groups = 0u32;
    let mut aos_groups = 0u32;
    let root_layout = policy.layout_for(root_count, words);
    push_group(&mut planes, idx, &idx.roots, words, root_layout);
    if root_count > 0 {
        groups += 1;
        aos_groups += u32::from(root_layout == GroupLayout::Aos);
    }
    let mut group_layout: Vec<u8> = vec![root_layout.flag()];
    let mut child_start: Vec<u32> = Vec::with_capacity(idx.nodes.len() + 1);
    child_start.push(0);
    let mut children: Vec<u32> = Vec::new();
    let mut parent: Vec<u32> = vec![NONE; root_count];
    let mut leaf_slot: Vec<u32> = Vec::new();
    let mut leaf_count = 0u32;
    let mut leaf_code_words: Vec<u64> = Vec::new();
    let mut leaf_ids_start: Vec<u32> = vec![0];
    let mut leaf_ids: Vec<TupleId> = Vec::new();

    let mut at = 0usize;
    while at < order.len() {
        let node = &idx.nodes[order[at] as usize];
        if let Some(leaf) = &node.leaf {
            leaf_slot.push(leaf_count);
            leaf_count += 1;
            leaf_code_words.extend_from_slice(leaf.code.words());
            leaf_ids.extend_from_slice(&leaf.ids);
            leaf_ids_start.push(leaf_ids.len() as u32);
            group_layout.push(GroupLayout::Soa.flag()); // leaves own no group
        } else {
            leaf_slot.push(NONE);
            // The per-subtree measurement: this group's width decides
            // its layout, independently of every other group.
            let layout = policy.layout_for(node.children.len(), words);
            push_group(&mut planes, idx, &node.children, words, layout);
            groups += 1;
            aos_groups += u32::from(layout == GroupLayout::Aos);
            group_layout.push(layout.flag());
            for &c in &node.children {
                children.push(order.len() as u32);
                parent.push(at as u32);
                order.push(c);
            }
        }
        child_start.push(children.len() as u32);
        at += 1;
    }

    // Sorted leaf directory: slots ordered by code row. Codes are distinct
    // (one leaf per code by construction), so the order is strict — the
    // property HA-Store's validator re-checks on open.
    let mut leaf_sorted: Vec<u32> = (0..leaf_count).collect();
    leaf_sorted.sort_unstable_by(|&a, &b| {
        let ra = &leaf_code_words[a as usize * words..(a as usize + 1) * words];
        let rb = &leaf_code_words[b as usize * words..(b as usize + 1) * words];
        ra.cmp(rb)
    });

    FlatHaIndex {
        code_len,
        words,
        epoch: idx.epoch,
        len: idx.len,
        root_count: root_count as u32,
        child_start,
        children,
        parent,
        planes,
        leaf_slot,
        leaf_code_words,
        leaf_sorted,
        leaf_ids_start,
        leaf_ids,
        group_layout,
        groups,
        aos_groups,
        kernel: policy.kernel(),
        prefetch: policy.prefetch(),
        workers: policy.workers(),
    }
}

impl FlatHaIndex {
    /// Arena mutation epoch this snapshot reflects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of indexed tuples (with multiplicity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Width of the indexed codes in bits.
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// Total nodes in the snapshot (all live, by construction).
    pub fn node_count(&self) -> usize {
        self.leaf_slot.len()
    }

    /// Heap bytes held by the snapshot's flat arrays.
    pub fn memory_bytes(&self) -> usize {
        vec_bytes(&self.child_start)
            + vec_bytes(&self.children)
            + vec_bytes(&self.parent)
            + vec_bytes(&self.planes)
            + vec_bytes(&self.leaf_slot)
            + vec_bytes(&self.leaf_code_words)
            + vec_bytes(&self.leaf_sorted)
            + vec_bytes(&self.leaf_ids_start)
            + vec_bytes(&self.leaf_ids)
            + vec_bytes(&self.group_layout)
    }

    /// Fraction of sibling groups the freeze policy laid out row-major
    /// (AoS), in `0.0 ..= 1.0`. The planner folds this into the flat
    /// backend's sparse penalty: AoS groups early-exit per sibling like
    /// the arena does, so a mostly-AoS snapshot does not pay the SoA
    /// stride tax the penalty models.
    pub fn aos_fraction(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            f64::from(self.aos_groups) / f64::from(self.groups)
        }
    }

    /// The snapshot's arrays as borrowed [`FlatParts`] — valid by
    /// construction (`compile` *is* the invariant builder), so views over
    /// them skip re-validation.
    fn parts(&self) -> FlatParts<'_> {
        FlatParts {
            code_len: self.code_len,
            words: self.words,
            root_count: self.root_count as usize,
            tuple_count: self.len,
            epoch: self.epoch,
            child_start: &self.child_start,
            children: &self.children,
            planes: &self.planes,
            leaf_slot: &self.leaf_slot,
            leaf_code_words: &self.leaf_code_words,
            leaf_ids_start: &self.leaf_ids_start,
            leaf_ids: &self.leaf_ids,
            leaf_sorted: &self.leaf_sorted,
            group_layout: &self.group_layout,
        }
    }

    /// Zero-copy search view over the owned arrays — the same type an
    /// `mmap`-ed HA-Store snapshot hands out — carrying the execution
    /// knobs (kernel, prefetch distance, morsel workers) the freeze
    /// policy resolved.
    pub fn view(&self) -> FlatStoreView<'_> {
        FlatStoreView::from_parts_unchecked(self.parts())
            .with_kernel(self.kernel)
            .with_prefetch(self.prefetch)
            .with_parallel(self.workers)
    }

    /// Serializes the snapshot into the persistent HA-Store format
    /// (v2, carrying the per-group layout flags; see
    /// `ha_store::store_bytes`).
    pub fn store_bytes(&self) -> Vec<u8> {
        ha_store::store_bytes(&self.parts())
    }

    /// Storage layout of group `gi` (0 = root group, `1 + p` = node
    /// `p`'s child group).
    #[inline]
    fn layout_of(&self, gi: usize) -> GroupLayout {
        GroupLayout::from_flag(self.group_layout.get(gi).copied().unwrap_or(0))
    }

    /// Exact point lookup over the sorted leaf directory: ids stored under
    /// `code`, or an empty slice.
    pub fn ids_for_code(&self, code: &BinaryCode) -> &[TupleId] {
        self.view().ids_for_code(code)
    }

    /// Tuple ids of leaf slot `slot`.
    #[inline]
    fn ids_of(&self, slot: u32) -> &[TupleId] {
        let lo = self.leaf_ids_start[slot as usize] as usize;
        let hi = self.leaf_ids_start[slot as usize + 1] as usize;
        &self.leaf_ids[lo..hi]
    }

    /// Word-plane slice and group size of node `p`'s child group.
    #[inline]
    fn child_group(&self, p: u32) -> (&[u64], usize, usize) {
        let lo = self.child_start[p as usize] as usize;
        let hi = self.child_start[p as usize + 1] as usize;
        let g = hi - lo;
        let base = 2 * self.words * (self.root_count as usize + lo);
        (&self.planes[base..base + 2 * self.words * g], g, lo)
    }

    /// Leaf slot `slot`'s code as a word row.
    #[inline]
    fn leaf_row(&self, slot: usize) -> &[u64] {
        &self.leaf_code_words[slot * self.words..(slot + 1) * self.words]
    }

    /// H-Search over the frozen layout (requires `keep_leaf_ids`).
    pub fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        self.view().search(query, h)
    }

    /// H-Search returning `(id, exact distance)` pairs.
    pub fn search_with_distances(&self, query: &BinaryCode, h: u32) -> Vec<(TupleId, u32)> {
        self.view().search_with_distances(query, h)
    }

    /// H-Search returning distinct qualifying codes with exact distances.
    pub fn search_codes(&self, query: &BinaryCode, h: u32) -> Vec<(BinaryCode, u32)> {
        self.view().search_codes(query, h)
    }

    /// Batched H-Search: one solo flat traversal per query, sharing the
    /// thread's scratch buffers across the whole batch so the steady
    /// state allocates nothing per query. (PR 3's serve bench showed raw
    /// per-query CPU, not traversal sharing, bounds throughput once
    /// locks are amortized.)
    pub fn batch_search(&self, queries: &[BinaryCode], h: u32) -> Vec<Vec<TupleId>> {
        self.view().batch_search(queries, h)
    }

    /// Reconstructs node `v`'s residual pattern from its sibling group's
    /// word-planes (trace rendering only — the hot path never needs it).
    fn pattern_of(&self, v: u32) -> MaskedCode {
        let rc = self.root_count as usize;
        let w = self.words;
        let (base, g, s, layout) = if (v as usize) < rc {
            (0usize, rc, v as usize, self.layout_of(0))
        } else {
            let p = self.parent[v as usize];
            let lo = self.child_start[p as usize] as usize;
            let hi = self.child_start[p as usize + 1] as usize;
            (
                2 * w * (rc + lo),
                hi - lo,
                v as usize - rc - lo,
                self.layout_of(p as usize + 1),
            )
        };
        let mut bits = vec![0u64; w];
        let mut mask = vec![0u64; w];
        for wi in 0..w {
            match layout {
                GroupLayout::Soa => {
                    bits[wi] = self.planes[base + 2 * wi * g + s];
                    mask[wi] = self.planes[base + (2 * wi + 1) * g + s];
                }
                GroupLayout::Aos => {
                    bits[wi] = self.planes[base + s * 2 * w + wi];
                    mask[wi] = self.planes[base + s * 2 * w + w + wi];
                }
            }
        }
        let bits = BinaryCode::from_words(&bits, self.code_len);
        let mask = BinaryCode::from_words(&mask, self.code_len);
        // Same-length by construction; the fallback is unreachable but keeps
        // this file within its zero panic budget.
        MaskedCode::new(bits, mask).unwrap_or_else(|_| MaskedCode::empty(self.code_len))
    }

    /// Instrumented H-Search over the flat layout — same rounds, events and
    /// snapshots as the arena's Table-3 trace. Distances here are computed
    /// exactly (no early exit): the trace reports the violating accumulated
    /// distance of pruned nodes, which the bailing kernel would truncate.
    pub fn search_trace(&self, query: &BinaryCode, h: u32) -> (Vec<TupleId>, Vec<TraceStep>) {
        assert_eq!(query.len(), self.code_len, "query length mismatch");
        let rc = self.root_count as usize;
        let w = self.words;
        let qw = query.words();
        let mut steps: Vec<TraceStep> = Vec::new();
        let mut results: Vec<TupleId> = Vec::new();
        // FIFO as a cursor over a grow-only Vec: identical visit order to
        // the arena's queue.
        let mut queue: Vec<(u32, u32)> = Vec::new();
        let mut cursor = 0usize;
        let mut dist: Vec<u32> = Vec::new();

        let visit = |v: u32,
                         d: u32,
                         events: &mut Vec<TraceEvent>,
                         results: &mut Vec<TupleId>,
                         queue: &mut Vec<(u32, u32)>| {
            if d > h {
                events.push(TraceEvent::Pruned {
                    pattern: self.pattern_of(v).to_string(),
                    acc: d,
                });
            } else if self.leaf_slot[v as usize] != NONE {
                let slot = self.leaf_slot[v as usize];
                let ids = self.ids_of(slot).to_vec();
                events.push(TraceEvent::Reported {
                    code: BinaryCode::from_words(self.leaf_row(slot as usize), self.code_len)
                        .to_string(),
                    distance: d,
                    ids: ids.clone(),
                });
                results.extend(ids);
            } else {
                events.push(TraceEvent::Enqueued {
                    pattern: self.pattern_of(v).to_string(),
                    acc: d,
                });
                queue.push((v, d));
            }
        };

        // Round 0: the top level.
        let mut events = Vec::new();
        if rc > 0 {
            dist.resize(rc, 0);
            // Scalar kernel, unlimited budget: nothing prunes, so every
            // accumulator is exact — the trace reports the violating
            // distance of pruned nodes, which a bailing kernel truncates.
            masked_distance_group(
                Kernel::Scalar,
                self.layout_of(0),
                qw,
                &self.planes[..2 * w * rc],
                rc,
                u32::MAX,
                &mut dist,
            );
            for v in 0..rc {
                visit(v as u32, dist[v], &mut events, &mut results, &mut queue);
            }
        }
        steps.push(TraceStep {
            events,
            queue_after: self.queued_patterns(&queue, cursor),
            results_so_far: results.clone(),
        });

        while cursor < queue.len() {
            let (p, acc) = queue[cursor];
            cursor += 1;
            let mut events = Vec::new();
            let (planes, g, lo) = self.child_group(p);
            dist.clear();
            dist.resize(g, acc);
            masked_distance_group(
                Kernel::Scalar,
                self.layout_of(p as usize + 1),
                qw,
                planes,
                g,
                u32::MAX,
                &mut dist,
            );
            for s in 0..g {
                visit(
                    self.children[lo + s],
                    dist[s],
                    &mut events,
                    &mut results,
                    &mut queue,
                );
            }
            steps.push(TraceStep {
                events,
                queue_after: self.queued_patterns(&queue, cursor),
                results_so_far: results.clone(),
            });
        }
        (results, steps)
    }

    fn queued_patterns(&self, queue: &[(u32, u32)], cursor: usize) -> Vec<String> {
        queue[cursor..]
            .iter()
            .map(|&(v, _)| self.pattern_of(v).to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::testkit::{clustered_dataset, paper_table_s, random_dataset};
    use crate::{DhaConfig, DynamicHaIndex, HammingIndex, MutableIndex};
    use ha_bitcode::BinaryCode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Freeze a clone and return (frozen, thawed-arena) views of the same
    /// contents.
    fn views(idx: &DynamicHaIndex) -> (DynamicHaIndex, DynamicHaIndex) {
        let mut frozen = idx.clone();
        frozen.freeze();
        let mut arena = frozen.clone();
        arena.thaw();
        (frozen, arena)
    }

    #[test]
    fn paper_example_byte_identical_to_arena() {
        let idx = DynamicHaIndex::build_with(
            paper_table_s(),
            DhaConfig {
                window: 2,
                max_depth: 4,
                ..DhaConfig::default()
            },
        );
        let (frozen, arena) = views(&idx);
        assert!(frozen.flat_is_current());
        assert!(!arena.flat_is_current());
        let q: BinaryCode = "101100010".parse().unwrap();
        for h in 0..=9 {
            assert_eq!(frozen.search(&q, h), arena.search(&q, h), "h={h}");
            assert_eq!(
                frozen.search_with_distances(&q, h),
                arena.search_with_distances(&q, h)
            );
            assert_eq!(frozen.search_codes(&q, h), arena.search_codes(&q, h));
        }
    }

    #[test]
    fn trace_byte_identical_to_arena() {
        let idx = DynamicHaIndex::build_with(
            paper_table_s(),
            DhaConfig {
                window: 2,
                max_depth: 4,
                ..DhaConfig::default()
            },
        );
        let (frozen, arena) = views(&idx);
        let q: BinaryCode = "010001011".parse().unwrap();
        let (ids_f, steps_f) = frozen.search_trace(&q, 3);
        let (ids_a, steps_a) = arena.search_trace(&q, 3);
        assert_eq!(ids_f, ids_a);
        assert_eq!(steps_f, steps_a);
        assert_eq!(ids_f, vec![0]);
    }

    #[test]
    fn batch_matches_solo_on_flat() {
        let data = clustered_dataset(400, 64, 6, 3, 17);
        let mut idx = DynamicHaIndex::build(data);
        idx.freeze();
        let mut rng = StdRng::seed_from_u64(18);
        let queries: Vec<BinaryCode> = (0..13).map(|_| BinaryCode::random(64, &mut rng)).collect();
        for h in [0u32, 3, 6, 10] {
            let batched = idx.batch_search(&queries, h);
            for (qi, q) in queries.iter().enumerate() {
                assert_eq!(batched[qi], idx.search(q, h), "h={h} query {qi}");
            }
        }
    }

    #[test]
    fn mutations_invalidate_then_refreeze_revalidates() {
        let data = random_dataset(200, 32, 23);
        let mut idx = DynamicHaIndex::build(data.clone());
        idx.freeze();
        assert!(idx.flat_is_current());
        let mut rng = StdRng::seed_from_u64(24);
        let fresh = BinaryCode::random(32, &mut rng);
        idx.insert(fresh.clone(), 9_999);
        assert!(!idx.flat_is_current(), "insert must invalidate the snapshot");
        // Stale snapshot is bypassed: the buffered tuple is visible.
        assert!(idx.search(&fresh, 0).contains(&9_999));
        idx.freeze();
        assert!(idx.flat_is_current());
        assert!(idx.search(&fresh, 0).contains(&9_999));
        assert!(idx.delete(&fresh, 9_999));
        assert!(!idx.flat_is_current(), "delete must invalidate the snapshot");
    }

    #[test]
    fn freeze_compacts_dead_slots() {
        let data = random_dataset(150, 24, 31);
        let mut idx = DynamicHaIndex::build(data.clone());
        for (code, id) in data.iter().take(40) {
            assert!(idx.delete(code, *id));
        }
        assert!(idx.dead_slots() > 0);
        let before = idx.dead_slots();
        idx.freeze();
        assert_eq!(idx.dead_slots(), 0, "freeze drops {before} dead slots");
        idx.check_invariants();
        let flat = idx.flat().expect("fresh snapshot");
        assert_eq!(flat.len(), idx.len());
        assert!(flat.node_count() > 0);
        assert!(flat.memory_bytes() > 0);
        // Results still match a linear oracle.
        let mut rng = StdRng::seed_from_u64(32);
        for h in [0u32, 2, 5] {
            let q = BinaryCode::random(24, &mut rng);
            crate::testkit::assert_matches_oracle(
                idx.search(&q, h),
                &data[40..],
                &q,
                h,
                "flat-after-delete",
            );
        }
    }

    #[test]
    fn empty_and_single_leaf_snapshots() {
        let mut empty = DynamicHaIndex::empty(16, DhaConfig::default());
        empty.freeze();
        assert!(empty.flat_is_current());
        assert!(empty.search(&BinaryCode::zero(16), 16).is_empty());

        let mut one = DynamicHaIndex::build([(BinaryCode::from_u64(5, 16), 7u64)]);
        one.freeze();
        assert_eq!(one.search(&BinaryCode::from_u64(5, 16), 0), vec![7]);
        let (_, steps) = one.search_trace(&BinaryCode::from_u64(5, 16), 0);
        assert!(!steps.is_empty());
    }

    #[test]
    fn freeze_policy_variants_answer_identically() {
        use crate::FreezePolicy;
        let data = clustered_dataset(220, 128, 5, 4, 77);
        let mut idx = DynamicHaIndex::build(data.clone());
        let adaptive = idx.freeze().clone();
        let soa = idx.freeze_with(FreezePolicy::always_soa()).clone();
        let aos = idx.freeze_with(FreezePolicy::always_aos()).clone();
        // 128-bit codes are multi-word, and a Gray forest always has
        // narrow groups near the leaves — adaptive must convert some.
        assert!(adaptive.aos_fraction() > 0.0, "adaptive found no narrow groups");
        assert_eq!(soa.aos_fraction(), 0.0);
        assert_eq!(aos.aos_fraction(), 1.0);
        let mut rng = StdRng::seed_from_u64(78);
        for h in [0u32, 3, 9, 25] {
            let q = BinaryCode::random(128, &mut rng);
            let want = soa.search(&q, h);
            assert_eq!(adaptive.search(&q, h), want, "adaptive h={h}");
            assert_eq!(aos.search(&q, h), want, "always-aos h={h}");
            let (ids_s, steps_s) = soa.search_trace(&q, h);
            let (ids_a, steps_a) = adaptive.search_trace(&q, h);
            assert_eq!(ids_s, ids_a, "trace ids h={h}");
            assert_eq!(steps_s, steps_a, "trace steps render identically h={h}");
        }
    }

    #[test]
    fn freeze_keeps_a_current_snapshot_but_freeze_with_recompiles() {
        let data = clustered_dataset(120, 512, 3, 4, 79);
        let mut idx = DynamicHaIndex::build(data);
        idx.freeze();
        assert!(idx.flat().expect("frozen").aos_fraction() > 0.0);
        idx.freeze_with(crate::FreezePolicy::always_soa());
        assert_eq!(idx.flat().expect("refrozen").aos_fraction(), 0.0);
        assert!(idx.flat_is_current());
        // Idempotent freeze must not silently replace the chosen layout.
        idx.freeze();
        assert_eq!(idx.flat().expect("kept").aos_fraction(), 0.0);
    }

    #[test]
    fn single_word_codes_stay_soa_under_adaptive() {
        let data = clustered_dataset(200, 64, 4, 3, 80);
        let mut idx = DynamicHaIndex::build(data);
        idx.freeze();
        assert_eq!(
            idx.flat().expect("frozen").aos_fraction(),
            0.0,
            "AoS only pays for multi-word codes"
        );
    }

    #[test]
    fn wide_codes_exercise_multiword_planes() {
        let data = clustered_dataset(120, 512, 4, 5, 41);
        let idx = DynamicHaIndex::build(data);
        let (frozen, arena) = views(&idx);
        let mut rng = StdRng::seed_from_u64(42);
        for h in [0u32, 8, 40, 200] {
            let mut q = BinaryCode::random(512, &mut rng);
            if rng.gen_bool(0.5) {
                // Half the queries sit near the data so something matches.
                q = frozen.items().next().map(|(c, _)| c).unwrap_or(q);
            }
            assert_eq!(frozen.search(&q, h), arena.search(&q, h), "h={h}");
        }
    }
}
