//! Merging HA-Indexes (§5.2): "non-leaf nodes with the same FLSSeq from the
//! different local HA-Indexes are merged into one node, and the
//! corresponding edges between the index nodes are relinked."
//!
//! The merge is recursive and top-down: two nodes are consolidated only
//! when their patterns are identical **and** their ancestor chains were
//! already consolidated, which preserves the path invariant (disjoint
//! masks, full coverage) that makes H-Search distances exact. Divergent
//! subtrees are simply adopted as new children, so the result is still a
//! tree and every original root-to-leaf chain survives verbatim.

use super::{DynamicHaIndex, NodeId};

pub(super) fn merge_into(dst: &mut DynamicHaIndex, src: DynamicHaIndex) {
    if src.nodes.is_empty() && src.buffer.is_empty() {
        return;
    }
    if dst.code_len == 0 {
        dst.code_len = src.code_len;
    }
    assert_eq!(dst.code_len, src.code_len, "merging different code lengths");
    dst.epoch += 1;

    // Graft the source arena onto the destination with an id offset.
    let offset = dst.nodes.len() as NodeId;
    dst.nodes.extend(src.nodes.into_iter().map(|mut n| {
        for c in &mut n.children {
            *c += offset;
        }
        n
    }));
    dst.len += src.len;
    dst.buffer.extend(src.buffer);
    // Provisional leaf-map entries; consolidation below re-points merged
    // leaves at their surviving node.
    if dst.config.keep_leaf_ids {
        for (code, leaf) in src.leaves {
            dst.leaves.insert(code, leaf + offset);
        }
    }

    // Consolidate each incoming root with an existing one where possible.
    for root in src.roots {
        let root = root + offset;
        let existing = dst.roots.iter().copied().find(|&r| mergeable(dst, r, root));
        match existing {
            Some(into) => merge_nodes(dst, into, root),
            None => dst.roots.push(root),
        }
    }
}

/// Nodes are mergeable when both are alive, have identical patterns, and
/// are of the same kind (leaf codes must also be identical — equal residual
/// patterns under different chains do not imply equal codes).
fn mergeable(idx: &DynamicHaIndex, a: NodeId, b: NodeId) -> bool {
    let na = &idx.nodes[a as usize];
    let nb = &idx.nodes[b as usize];
    if !na.alive || !nb.alive || na.pattern != nb.pattern {
        return false;
    }
    match (&na.leaf, &nb.leaf) {
        (None, None) => true,
        (Some(la), Some(lb)) => la.code == lb.code,
        _ => false,
    }
}

/// Consolidates `b` into `a` (both alive, mergeable). `b`'s children are
/// adopted — merged recursively with pattern-equal children of `a`, or
/// appended.
fn merge_nodes(idx: &mut DynamicHaIndex, a: NodeId, b: NodeId) {
    debug_assert!(mergeable(idx, a, b));
    let b_node = {
        let n = &mut idx.nodes[b as usize];
        n.alive = false;
        (n.frequency, n.children.split_off(0), n.leaf.take())
    };
    let (b_freq, b_children, b_leaf) = b_node;
    idx.nodes[a as usize].frequency += b_freq;

    if let Some(mut leaf) = b_leaf {
        // Leaf + leaf: concatenate id lists, re-point the leaf map.
        let a_node = &mut idx.nodes[a as usize];
        let code = leaf.code.clone();
        a_node
            .leaf
            .as_mut()
            .expect("mergeable guarantees same kind")
            .ids
            .append(&mut leaf.ids);
        if idx.config.keep_leaf_ids {
            idx.leaves.insert(code, a);
        }
        return;
    }

    for bc in b_children {
        let target = idx.nodes[a as usize]
            .children
            .iter()
            .copied()
            .find(|&ac| mergeable(idx, ac, bc));
        match target {
            Some(into) => merge_nodes(idx, into, bc),
            None => idx.nodes[a as usize].children.push(bc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_matches_oracle, clustered_dataset, random_dataset};
    use crate::{DhaConfig, HammingIndex};
    use ha_bitcode::BinaryCode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn merge_two_partitions_equals_single_build() {
        let data = random_dataset(200, 32, 91);
        let (p1, p2) = data.split_at(100);
        let mut a = DynamicHaIndex::build(p1.to_vec());
        let b = DynamicHaIndex::build(p2.to_vec());
        a.merge_from(b);
        a.check_invariants();
        assert_eq!(a.len(), 200);
        let mut rng = StdRng::seed_from_u64(92);
        for h in [0, 2, 5, 10] {
            let q = BinaryCode::random(32, &mut rng);
            assert_matches_oracle(a.search(&q, h), &data, &q, h, "dha-merged");
        }
    }

    #[test]
    fn merge_consolidates_shared_patterns() {
        // Two partitions of the *same* clustered data must share patterns;
        // the merged index should have fewer nodes than the sum of parts.
        let data = clustered_dataset(400, 32, 3, 2, 93);
        let (p1, p2) = data.split_at(200);
        let a = DynamicHaIndex::build(p1.to_vec());
        let b = DynamicHaIndex::build(p2.to_vec());
        let separate = a.internal_node_count() + b.internal_node_count();
        let merged = DynamicHaIndex::merge_all(vec![a, b]);
        merged.check_invariants();
        assert!(
            merged.internal_node_count() <= separate,
            "merged {} vs separate {}",
            merged.internal_node_count(),
            separate
        );
    }

    #[test]
    fn merge_many_partitions() {
        let data = random_dataset(300, 32, 94);
        let parts: Vec<DynamicHaIndex> = data
            .chunks(60)
            .map(|chunk| DynamicHaIndex::build(chunk.to_vec()))
            .collect();
        let idx = DynamicHaIndex::merge_all(parts);
        idx.check_invariants();
        assert_eq!(idx.len(), 300);
        let mut rng = StdRng::seed_from_u64(95);
        let q = BinaryCode::random(32, &mut rng);
        assert_matches_oracle(idx.search(&q, 4), &data, &q, 4, "dha-merge-many");
    }

    #[test]
    fn merge_handles_duplicate_codes_across_partitions() {
        let code: BinaryCode = "11001100110011001100110011001100".parse().unwrap();
        let mut a = DynamicHaIndex::build([(code.clone(), 1)]);
        let b = DynamicHaIndex::build([(code.clone(), 2)]);
        a.merge_from(b);
        a.check_invariants();
        let mut got = a.search(&code, 0);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(a.leaf_count(), 1, "same code consolidates into one leaf");
    }

    #[test]
    fn merge_into_empty_adopts_everything() {
        let data = random_dataset(50, 32, 96);
        let mut empty = DynamicHaIndex::empty(32, DhaConfig::default());
        empty.merge_from(DynamicHaIndex::build(data.clone()));
        empty.check_invariants();
        assert_eq!(empty.len(), 50);
        let mut rng = StdRng::seed_from_u64(97);
        let q = BinaryCode::random(32, &mut rng);
        assert_matches_oracle(empty.search(&q, 6), &data, &q, 6, "dha-into-empty");
    }

    #[test]
    fn merged_index_supports_maintenance() {
        use crate::MutableIndex;
        let data = random_dataset(120, 32, 98);
        let (p1, p2) = data.split_at(60);
        let mut idx = DynamicHaIndex::build(p1.to_vec());
        idx.merge_from(DynamicHaIndex::build(p2.to_vec()));
        let (code, id) = data[30].clone();
        assert!(idx.delete(&code, id));
        idx.insert(code.clone(), id);
        let mut rng = StdRng::seed_from_u64(99);
        let q = BinaryCode::random(32, &mut rng);
        assert_matches_oracle(idx.search(&q, 4), &data, &q, 4, "dha-merged-maint");
        // Random maintenance storm.
        let mut live: Vec<(BinaryCode, u64)> = data.clone();
        for step in 0..40 {
            let pos = rng.gen_range(0..live.len());
            let (c, i) = live[pos].clone();
            if step % 3 == 0 {
                assert!(idx.delete(&c, i));
                live.remove(pos);
            } else {
                let nid = 1000 + step as u64;
                idx.insert(c.clone(), nid);
                live.push((c, nid));
            }
        }
        idx.flush();
        idx.check_invariants();
        let q = BinaryCode::random(32, &mut rng);
        assert_matches_oracle(idx.search(&q, 5), &live, &q, 5, "dha-storm");
    }
}
