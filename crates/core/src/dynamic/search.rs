//! H-Search (Algorithm 3): breadth-first traversal with downward-closure
//! pruning, plus the instrumented variant that reproduces the Table 3
//! execution trace.
//!
//! The BFS frontier is two swapped `Vec`s (level-synchronous) rather than a
//! `VecDeque`: a BFS visits nodes level by level either way, so the visit
//! and emission order is identical, but the two-vector form reuses its
//! buffers across levels (and, in the batched search, across the whole
//! batch) instead of churning a ring buffer.

use ha_bitcode::BinaryCode;

use super::{DynamicHaIndex, NodeId};
use crate::TupleId;

/// One queue entry: a node plus the Hamming distance accumulated along the
/// path leading to it (`m.h` of Algorithm 3).
#[derive(Clone, Copy, Debug)]
struct Entry {
    node: NodeId,
    acc: u32,
}

/// Core BFS shared by all three search flavours. Calls `emit` for each
/// qualifying leaf with its exact distance.
fn bfs(idx: &DynamicHaIndex, query: &BinaryCode, h: u32, mut emit: impl FnMut(NodeId, u32)) {
    assert_eq!(query.len(), idx.code_len, "query length mismatch");
    let mut frontier: Vec<Entry> = Vec::new();
    let mut next: Vec<Entry> = Vec::new();
    // Lines 2–7: admit qualifying top-level entries.
    for &root in &idx.roots {
        let node = &idx.nodes[root as usize];
        if !node.alive {
            continue;
        }
        let Some(d) = node.pattern.distance_within(query, h) else {
            continue;
        };
        if node.is_leaf() {
            emit(root, d);
        } else {
            frontier.push(Entry { node: root, acc: d });
        }
    }
    // Lines 8–27, one level per pass.
    while !frontier.is_empty() {
        next.clear();
        for &Entry { node, acc } in &frontier {
            for &child_id in &idx.nodes[node as usize].children {
                let child = &idx.nodes[child_id as usize];
                if !child.alive {
                    continue;
                }
                // Line 13: hdis(tq, c) + n.h ≤ h — the downward-closure
                // prune, bailing mid-scan once the budget is blown.
                let Some(d) = child.pattern.distance_within(query, h.saturating_sub(acc)) else {
                    continue;
                };
                let total = acc + d;
                if child.is_leaf() {
                    // Path masks partition all bit positions, so `total` is
                    // the exact Hamming distance of the leaf's code.
                    emit(child_id, total);
                } else {
                    next.push(Entry {
                        node: child_id,
                        acc: total,
                    });
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
}

/// H-Search returning tuple ids (requires `keep_leaf_ids`).
pub(super) fn h_search(idx: &DynamicHaIndex, query: &BinaryCode, h: u32) -> Vec<TupleId> {
    let mut out = Vec::new();
    bfs(idx, query, h, |leaf, _| {
        let data = idx.nodes[leaf as usize]
            .leaf
            .as_ref()
            .expect("emit on leaf");
        out.extend_from_slice(&data.ids);
    });
    // The insert buffer holds tuples not yet in the tree.
    for (code, id) in &idx.buffer {
        if code.hamming_within(query, h).is_some() {
            out.push(*id);
        }
    }
    out
}

/// H-Search returning `(id, exact distance)` pairs — the kNN layers rank
/// by distance, and the path invariant delivers it for free.
pub(super) fn h_search_with_distances(
    idx: &DynamicHaIndex,
    query: &BinaryCode,
    h: u32,
) -> Vec<(TupleId, u32)> {
    let mut out = Vec::new();
    bfs(idx, query, h, |leaf, d| {
        let data = idx.nodes[leaf as usize]
            .leaf
            .as_ref()
            .expect("emit on leaf");
        out.extend(data.ids.iter().map(|&id| (id, d)));
    });
    for (code, id) in &idx.buffer {
        if let Some(d) = code.hamming_within(query, h) {
            out.push((*id, d));
        }
    }
    out
}

/// H-Search returning distinct qualifying codes with exact distances
/// (Option B of the MapReduce join — works without leaf id lists).
pub(super) fn h_search_codes(
    idx: &DynamicHaIndex,
    query: &BinaryCode,
    h: u32,
) -> Vec<(BinaryCode, u32)> {
    let mut out = Vec::new();
    bfs(idx, query, h, |leaf, d| {
        let data = idx.nodes[leaf as usize]
            .leaf
            .as_ref()
            .expect("emit on leaf");
        out.push((data.code.clone(), d));
    });
    for (code, _) in &idx.buffer {
        if let Some(d) = code.hamming_within(query, h) {
            if !out.iter().any(|(c, _)| c == code) {
                out.push((code.clone(), d));
            }
        }
    }
    out
}

/// One queue entry of the batched search: a node plus, for every query
/// that survived the path so far, `(query index, accumulated distance)`.
///
/// Deep in the forest most entries carry exactly one live query (the
/// batch's frontiers diverge as pruning bites), so the single-survivor
/// case is stored inline — an entry only owns heap storage while two or
/// more queries genuinely share its path.
struct BatchEntry {
    node: NodeId,
    active: Active,
}

enum Active {
    One((u32, u32)),
    Many(Vec<(u32, u32)>),
}

impl Active {
    fn pairs(&self) -> &[(u32, u32)] {
        match self {
            Active::One(pair) => std::slice::from_ref(pair),
            Active::Many(v) => v,
        }
    }
}

/// Shared-frontier batched H-Search (see [`DynamicHaIndex::batch_search`]).
///
/// Correctness: a query's `(qi, acc)` pair rides an entry iff the per-query
/// BFS of [`bfs`] would have enqueued that node with that accumulated
/// distance, so each query's emissions are exactly its solo emissions; the
/// sharing only collapses the *traversal* (queue entries, child iteration,
/// pattern fetches), not the per-query distance arithmetic.
pub(super) fn h_batch_search(
    idx: &DynamicHaIndex,
    queries: &[BinaryCode],
    h: u32,
) -> Vec<Vec<TupleId>> {
    let mut out: Vec<Vec<TupleId>> = vec![Vec::new(); queries.len()];
    if queries.is_empty() {
        return out;
    }
    for q in queries {
        assert_eq!(q.len(), idx.code_len, "query length mismatch");
    }
    let emit = |out: &mut Vec<Vec<TupleId>>, leaf: NodeId, qi: u32| {
        if let Some(data) = idx.nodes[leaf as usize].leaf.as_ref() {
            out[qi as usize].extend_from_slice(&data.ids);
        }
    };
    let mut frontier: Vec<BatchEntry> = Vec::new();
    let mut next_level: Vec<BatchEntry> = Vec::new();
    for &root in &idx.roots {
        let node = &idx.nodes[root as usize];
        if !node.alive {
            continue;
        }
        let mut active = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            let d = node.pattern.distance_to(q);
            if d <= h {
                if node.is_leaf() {
                    emit(&mut out, root, qi as u32);
                } else {
                    active.push((qi as u32, d));
                }
            }
        }
        match active.len() {
            0 => {}
            1 => frontier.push(BatchEntry {
                node: root,
                active: Active::One(active[0]),
            }),
            _ => frontier.push(BatchEntry {
                node: root,
                active: Active::Many(std::mem::take(&mut active)),
            }),
        }
    }
    // Level-synchronous frontier (two swapped Vecs), with multi-survivor
    // lists recycled through a scratch pool so the steady state allocates
    // (almost) nothing: every drained `Many` frees one list, every child
    // that keeps ≥2 queries claims one. All four buffers live for the
    // whole batch — per-query allocation is the high-water mark only.
    let mut pool: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut scratch: Vec<(u32, u32)> = Vec::new();
    while !frontier.is_empty() {
        for BatchEntry { node, active } in frontier.drain(..) {
            for &child_id in &idx.nodes[node as usize].children {
                let child = &idx.nodes[child_id as usize];
                if !child.alive {
                    continue;
                }
                let is_leaf = child.is_leaf();
                scratch.clear();
                for &(qi, acc) in active.pairs() {
                    let d = child.pattern.distance_to(&queries[qi as usize]);
                    let total = acc + d;
                    if total > h {
                        continue;
                    }
                    if is_leaf {
                        emit(&mut out, child_id, qi);
                    } else {
                        scratch.push((qi, total));
                    }
                }
                match scratch.len() {
                    0 => {}
                    1 => next_level.push(BatchEntry {
                        node: child_id,
                        active: Active::One(scratch[0]),
                    }),
                    _ => {
                        let mut survivors = pool.pop().unwrap_or_default();
                        survivors.clear();
                        survivors.extend_from_slice(&scratch);
                        next_level.push(BatchEntry {
                            node: child_id,
                            active: Active::Many(survivors),
                        });
                    }
                }
            }
            if let Active::Many(freed) = active {
                pool.push(freed);
            }
        }
        std::mem::swap(&mut frontier, &mut next_level);
    }
    for (code, id) in &idx.buffer {
        for (qi, q) in queries.iter().enumerate() {
            if code.hamming_within(q, h).is_some() {
                out[qi].push(*id);
            }
        }
    }
    out
}

/// What happened to one node during a traced H-Search round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Node admitted to the queue with this accumulated distance.
    Enqueued {
        /// Rendered node pattern.
        pattern: String,
        /// Accumulated path distance.
        acc: u32,
    },
    /// Node discarded because the accumulated lower bound exceeded `h` —
    /// its entire subtree skipped.
    Pruned {
        /// Rendered node pattern.
        pattern: String,
        /// The violating accumulated distance.
        acc: u32,
    },
    /// Qualifying leaf: tuples reported.
    Reported {
        /// The leaf's full binary code.
        code: String,
        /// Exact Hamming distance to the query.
        distance: u32,
        /// Ids collected (empty in leafless mode).
        ids: Vec<TupleId>,
    },
}

/// One BFS round of a traced search: the events of the round plus the
/// queue and result-set snapshots afterwards — the columns of Table 3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// Events processed this round.
    pub events: Vec<TraceEvent>,
    /// Patterns of the entries still queued after the round.
    pub queue_after: Vec<String>,
    /// Ids reported so far (the `ret` column).
    pub results_so_far: Vec<TupleId>,
}

/// Instrumented H-Search (drives the Table 3 experiment and the
/// `h_search_trace` integration test).
pub(super) fn h_search_trace(
    idx: &DynamicHaIndex,
    query: &BinaryCode,
    h: u32,
) -> (Vec<TupleId>, Vec<TraceStep>) {
    assert_eq!(query.len(), idx.code_len, "query length mismatch");
    let mut steps = Vec::new();
    let mut results: Vec<TupleId> = Vec::new();
    // FIFO as a cursor over a grow-only Vec: same visit order as a
    // VecDeque, but the snapshot of "still queued" is just a subslice.
    let mut queue: Vec<Entry> = Vec::new();
    let mut cursor = 0usize;

    // Round 0: the top level.
    let mut events = Vec::new();
    for &root in &idx.roots {
        let node = &idx.nodes[root as usize];
        if !node.alive {
            continue;
        }
        let d = node.pattern.distance_to(query);
        if d <= h {
            if let Some(leaf) = &node.leaf {
                events.push(TraceEvent::Reported {
                    code: leaf.code.to_string(),
                    distance: d,
                    ids: leaf.ids.clone(),
                });
                results.extend_from_slice(&leaf.ids);
            } else {
                events.push(TraceEvent::Enqueued {
                    pattern: node.pattern.to_string(),
                    acc: d,
                });
                queue.push(Entry { node: root, acc: d });
            }
        } else {
            events.push(TraceEvent::Pruned {
                pattern: node.pattern.to_string(),
                acc: d,
            });
        }
    }
    steps.push(TraceStep {
        events,
        queue_after: snapshot(idx, &queue[cursor..]),
        results_so_far: results.clone(),
    });

    while cursor < queue.len() {
        let Entry { node, acc } = queue[cursor];
        cursor += 1;
        let mut events = Vec::new();
        for &child_id in &idx.nodes[node as usize].children {
            let child = &idx.nodes[child_id as usize];
            if !child.alive {
                continue;
            }
            let d = child.pattern.distance_to(query);
            let total = acc + d;
            if total > h {
                events.push(TraceEvent::Pruned {
                    pattern: child.pattern.to_string(),
                    acc: total,
                });
            } else if let Some(leaf) = &child.leaf {
                events.push(TraceEvent::Reported {
                    code: leaf.code.to_string(),
                    distance: total,
                    ids: leaf.ids.clone(),
                });
                results.extend_from_slice(&leaf.ids);
            } else {
                events.push(TraceEvent::Enqueued {
                    pattern: child.pattern.to_string(),
                    acc: total,
                });
                queue.push(Entry {
                    node: child_id,
                    acc: total,
                });
            }
        }
        steps.push(TraceStep {
            events,
            queue_after: snapshot(idx, &queue[cursor..]),
            results_so_far: results.clone(),
        });
    }

    for (code, id) in &idx.buffer {
        if code.hamming_within(query, h).is_some() {
            results.push(*id);
        }
    }
    (results, steps)
}

fn snapshot(idx: &DynamicHaIndex, queued: &[Entry]) -> Vec<String> {
    queued
        .iter()
        .map(|e| idx.nodes[e.node as usize].pattern.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_matches_oracle, clustered_dataset, paper_table_s, random_dataset};
    use crate::{DhaConfig, HammingIndex};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn paper_example_1_select() {
        let data = paper_table_s();
        let idx = DynamicHaIndex::build(data.clone());
        let q: BinaryCode = "101100010".parse().unwrap();
        assert_matches_oracle(idx.search(&q, 3), &data, &q, 3, "dha");
    }

    #[test]
    fn table_3_query_returns_exactly_t0() {
        // §4.6: query 010001011, h = 3 over Table 2a → only t0 qualifies.
        let data = paper_table_s();
        let idx = DynamicHaIndex::build_with(
            data.clone(),
            DhaConfig {
                window: 2,
                max_depth: 4,
                ..DhaConfig::default()
            },
        );
        let q: BinaryCode = "010001011".parse().unwrap();
        let (ids, steps) = idx.search_trace(&q, 3);
        assert_eq!(ids, vec![0], "only t0");
        // The trace must show real pruning (discarded subtrees) and end
        // with t0 in the result column, mirroring Table 3's final row.
        let pruned = steps
            .iter()
            .flat_map(|s| &s.events)
            .filter(|e| matches!(e, TraceEvent::Pruned { .. }))
            .count();
        assert!(pruned > 0, "expected pruning in the trace");
        assert_eq!(steps.last().unwrap().results_so_far, vec![0]);
        // And a full search agrees with the oracle.
        assert_matches_oracle(idx.search(&q, 3), &data, &q, 3, "dha-trace");
    }

    #[test]
    fn matches_oracle_random_data_every_threshold() {
        let data = random_dataset(300, 32, 71);
        let idx = DynamicHaIndex::build(data.clone());
        idx.check_invariants();
        let mut rng = StdRng::seed_from_u64(6);
        for h in [0, 1, 2, 3, 5, 8, 16, 32] {
            let q = BinaryCode::random(32, &mut rng);
            assert_matches_oracle(idx.search(&q, h), &data, &q, h, "dha");
        }
    }

    #[test]
    fn matches_oracle_clustered_data() {
        let data = clustered_dataset(600, 64, 6, 3, 29);
        let idx = DynamicHaIndex::build(data.clone());
        idx.check_invariants();
        let mut rng = StdRng::seed_from_u64(30);
        for h in [0, 2, 4, 8] {
            let mut q = data[rng.gen_range(0..data.len())].0.clone();
            for _ in 0..2 {
                q.flip(rng.gen_range(0..64));
            }
            assert_matches_oracle(idx.search(&q, h), &data, &q, h, "dha-clustered");
        }
    }

    #[test]
    fn window_and_depth_do_not_change_results() {
        let data = clustered_dataset(300, 32, 5, 3, 41);
        let mut rng = StdRng::seed_from_u64(42);
        let q = BinaryCode::random(32, &mut rng);
        let want = crate::testkit::oracle_select(&data, &q, 4);
        for window in [2usize, 3, 4, 8, 16, 64] {
            for depth in [1usize, 2, 4, 8] {
                let idx = DynamicHaIndex::build_with(
                    data.clone(),
                    DhaConfig {
                        window,
                        max_depth: depth,
                        ..DhaConfig::default()
                    },
                );
                idx.check_invariants();
                let mut got = idx.search(&q, 4);
                got.sort_unstable();
                assert_eq!(got, want, "window={window} depth={depth}");
            }
        }
    }

    #[test]
    fn search_codes_agrees_with_search_ids() {
        let data = random_dataset(200, 32, 51);
        let idx = DynamicHaIndex::build(data.clone());
        let mut rng = StdRng::seed_from_u64(52);
        let q = BinaryCode::random(32, &mut rng);
        let by_code: Vec<(BinaryCode, u32)> = idx.search_codes(&q, 5);
        // Every reported code's distance is exact…
        for (code, d) in &by_code {
            assert_eq!(code.hamming(&q), *d);
        }
        // …and expanding codes to ids matches the id search.
        let mut expanded: Vec<u64> = by_code
            .iter()
            .flat_map(|(code, _)| {
                data.iter()
                    .filter(move |(c, _)| c == code)
                    .map(|&(_, id)| id)
            })
            .collect();
        expanded.sort_unstable();
        let mut ids = idx.search(&q, 5);
        ids.sort_unstable();
        assert_eq!(expanded, ids);
    }

    #[test]
    fn leafless_mode_searches_codes() {
        let data = random_dataset(150, 32, 61);
        let idx = DynamicHaIndex::build_with(
            data.clone(),
            DhaConfig {
                keep_leaf_ids: false,
                ..DhaConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(62);
        let q = BinaryCode::random(32, &mut rng);
        let got: Vec<BinaryCode> = idx
            .search_codes(&q, 6)
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        let mut got_sorted = got.clone();
        got_sorted.sort();
        let mut want: Vec<BinaryCode> = data
            .iter()
            .filter(|(c, _)| c.hamming(&q) <= 6)
            .map(|(c, _)| c.clone())
            .collect();
        want.sort();
        want.dedup();
        assert_eq!(got_sorted, want);
    }

    #[test]
    fn deep_narrow_trees_prune_heavily() {
        // On tightly clustered data a far-away query should visit almost
        // nothing: the traced search must prune at the top level.
        let data = clustered_dataset(500, 64, 1, 2, 77);
        let idx = DynamicHaIndex::build_with(
            data,
            DhaConfig {
                window: 4,
                max_depth: 6,
                ..DhaConfig::default()
            },
        );
        // Query = complement of the cluster centre region: all distances
        // huge.
        let far = idx.nodes[idx.leaves.values().next().copied().unwrap() as usize]
            .leaf
            .as_ref()
            .unwrap()
            .code
            .not();
        let (ids, steps) = idx.search_trace(&far, 3);
        assert!(ids.is_empty());
        let visited: usize = steps.iter().map(|s| s.events.len()).sum();
        assert!(
            visited < 60,
            "far query should touch few nodes, visited {visited}"
        );
    }

    #[test]
    fn batch_search_equals_per_query_search() {
        use crate::MutableIndex;
        let data = clustered_dataset(400, 32, 6, 3, 91);
        let mut idx = DynamicHaIndex::build(data.clone());
        // Leave a few tuples in the insert buffer so the batch path covers
        // the buffer scan too.
        let mut rng = StdRng::seed_from_u64(92);
        for extra in 0..5u64 {
            idx.insert(BinaryCode::random(32, &mut rng), 10_000 + extra);
        }
        assert!(!idx.buffer.is_empty());
        for h in [0u32, 2, 4, 7] {
            let queries: Vec<BinaryCode> =
                (0..17).map(|_| BinaryCode::random(32, &mut rng)).collect();
            let batched = idx.batch_search(&queries, h);
            assert_eq!(batched.len(), queries.len());
            for (qi, q) in queries.iter().enumerate() {
                let mut got = batched[qi].clone();
                let mut want = idx.search(q, h);
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "h={h} query {qi}");
            }
        }
        // Empty batch is a no-op.
        assert!(idx.batch_search(&[], 3).is_empty());
    }

    #[test]
    fn epoch_tracks_mutations_only() {
        use crate::MutableIndex;
        let data = paper_table_s();
        let mut idx = DynamicHaIndex::build(data.clone());
        assert_eq!(idx.epoch(), 0, "fresh build starts at epoch 0");
        let q: BinaryCode = "101100010".parse().unwrap();
        let _ = idx.search(&q, 3);
        let _ = idx.batch_search(std::slice::from_ref(&q), 3);
        assert_eq!(idx.epoch(), 0, "searches do not advance the epoch");
        idx.insert("101100011".parse().unwrap(), 50);
        let e1 = idx.epoch();
        assert!(e1 > 0, "insert advances the epoch");
        assert!(!idx.delete(&q, 999), "absent tuple");
        assert_eq!(idx.epoch(), e1, "failed delete leaves the epoch alone");
        assert!(idx.delete(&data[0].0, 0));
        assert!(idx.epoch() > e1, "delete advances the epoch");
    }

    #[test]
    fn items_roundtrips_the_dataset() {
        use crate::MutableIndex;
        let data = random_dataset(120, 24, 95);
        let mut idx = DynamicHaIndex::build(data.clone());
        idx.insert(data[0].0.clone(), 7777); // buffered or fast-path
        let mut got: Vec<(BinaryCode, u64)> = idx.items().collect();
        let mut want = data;
        want.push((want[0].0.clone(), 7777));
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_batch_search_equals_solo(seed in any::<u64>(), h in 0u32..10) {
            let data = random_dataset(140, 28, seed);
            let idx = DynamicHaIndex::build(data);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C4);
            let queries: Vec<BinaryCode> =
                (0..9).map(|_| BinaryCode::random(28, &mut rng)).collect();
            let batched = idx.batch_search(&queries, h);
            for (qi, q) in queries.iter().enumerate() {
                let mut got = batched[qi].clone();
                let mut want = idx.search(q, h);
                got.sort_unstable();
                want.sort_unstable();
                prop_assert_eq!(got, want, "query {}", qi);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_dha_equals_oracle(seed in any::<u64>(), h in 0u32..12, window in 2usize..12) {
            let data = random_dataset(120, 28, seed);
            let idx = DynamicHaIndex::build_with(
                data.clone(),
                DhaConfig { window, ..DhaConfig::default() },
            );
            idx.check_invariants();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD15EA5E);
            let q = BinaryCode::random(28, &mut rng);
            assert_matches_oracle(idx.search(&q, h), &data, &q, h, "dha-prop");
        }
    }
}
