//! Arena node types of the Dynamic HA-Index.

use ha_bitcode::{BinaryCode, MaskedCode};

use crate::TupleId;

/// Index into the node arena.
pub(crate) type NodeId = u32;

/// Payload of a leaf node: one *distinct* binary code and the ids of the
/// tuples bearing it (the per-leaf hash-table entry of §4.5; empty in the
/// leafless variant).
#[derive(Clone, Debug)]
pub(crate) struct LeafData {
    pub code: BinaryCode,
    pub ids: Vec<TupleId>,
}

/// One node of the HA-Index forest.
///
/// `pattern` is the node's **residual** FLSSeq: the bit positions this node
/// contributes beyond everything its ancestors already pinned down. For a
/// root the pattern is its full extracted FLSSeq; for a leaf it is the
/// code minus all ancestor masks.
#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub pattern: MaskedCode,
    pub children: Vec<NodeId>,
    /// Number of tuples (with multiplicity) in this subtree — the
    /// frequency counter of Algorithm 1 lines 6–11 / Algorithm 2.
    pub frequency: u32,
    pub leaf: Option<LeafData>,
    /// Cleared by H-Delete when the subtree empties; dead slots stay in
    /// the arena but are unreachable from `roots`.
    pub alive: bool,
}

impl Node {
    pub(crate) fn internal(pattern: MaskedCode) -> Self {
        Node {
            pattern,
            children: Vec::new(),
            frequency: 0,
            leaf: None,
            alive: true,
        }
    }

    /// `frequency` is passed explicitly because the leafless variant keeps
    /// the tuple count but drops the id list.
    pub(crate) fn leaf(
        pattern: MaskedCode,
        code: BinaryCode,
        ids: Vec<TupleId>,
        frequency: u32,
    ) -> Self {
        Node {
            pattern,
            children: Vec::new(),
            frequency,
            leaf: Some(LeafData { code, ids }),
            alive: true,
        }
    }

    pub(crate) fn is_leaf(&self) -> bool {
        self.leaf.is_some()
    }
}
