//! Binary wire format for the Dynamic HA-Index.
//!
//! §5.2 broadcasts the global HA-Index to every worker through the
//! distributed cache; this module is the actual encoder/decoder backing
//! that step (and persistence in general). The format is deliberately
//! simple and versioned:
//!
//! ```text
//! "HAIX" | version:u8 | flags:u8 | code_len:u16 | node_count:u32
//! per node (alive nodes only, densely re-indexed, children-before-use
//! not required — ids are resolved after the full table is read):
//!   pattern bits  : ceil(code_len/8) bytes (MSB-first)
//!   pattern mask  : ceil(code_len/8) bytes
//!   frequency     : u32
//!   child_count   : u32, then child ids : u32 each
//!   kind          : u8 (0 = internal, 1 = leaf)
//!   if leaf: full code bytes, id_count:u32, ids:u64 each
//! root_count:u32, root ids:u32 each
//! buffered_count:u32, then (code bytes, id:u64) each
//! checksum:u64 — FNV-1a over every preceding byte (version 2)
//! ```
//!
//! All integers little-endian. Flag bit 0 = leaf id lists present
//! (Option A); the leafless Option B index simply has empty id lists.
//! The trailing checksum footer (added in version 2) is verified before
//! any structural parsing: a blob corrupted on the broadcast or the DFS
//! hop is rejected with [`DecodeError::ChecksumMismatch`] before
//! H-Search can trust it.

use std::collections::HashMap;
use std::fmt;

use ha_bitcode::fnv::fnv64;
use ha_bitcode::{BinaryCode, MaskedCode};

use super::node::{LeafData, Node, NodeId};
use super::{DhaConfig, DynamicHaIndex};

const MAGIC: &[u8; 4] = b"HAIX";
const VERSION: u8 = 2;
/// Bytes of the FNV-1a footer appended in version 2.
const FOOTER_LEN: usize = 8;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input does not start with the `HAIX` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// Input ended prematurely or a length field is inconsistent.
    Truncated,
    /// The FNV-1a footer does not match the blob body — the index was
    /// corrupted in transit or at rest.
    ChecksumMismatch,
    /// A node/root reference points outside the node table.
    DanglingReference(u32),
    /// Structural validation failed after decoding.
    Corrupt(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not an HA-Index blob (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported HA-Index version {v}"),
            DecodeError::Truncated => write!(f, "truncated HA-Index blob"),
            DecodeError::ChecksumMismatch => {
                write!(f, "HA-Index blob failed checksum verification")
            }
            DecodeError::DanglingReference(id) => {
                write!(f, "dangling node reference {id}")
            }
            DecodeError::Corrupt(what) => write!(f, "corrupt HA-Index blob: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn code(&mut self, c: &BinaryCode) {
        self.buf.extend_from_slice(&c.to_packed_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
    fn code(&mut self, len: usize) -> Result<BinaryCode, DecodeError> {
        let bytes = self.take(len.div_ceil(8))?;
        Ok(BinaryCode::from_packed_bytes(bytes, len))
    }
}

impl DynamicHaIndex {
    /// Encodes the index into its wire format (see module docs). Dead
    /// arena slots are compacted away.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(MAGIC);
        w.u8(VERSION);
        w.u8(u8::from(self.config.keep_leaf_ids));
        w.u16(self.code_len as u16);

        // Dense re-numbering of live nodes.
        let mut remap: HashMap<NodeId, u32> = HashMap::new();
        let live: Vec<NodeId> = (0..self.nodes.len() as NodeId)
            .filter(|&i| self.nodes[i as usize].alive)
            .collect();
        for (dense, &old) in live.iter().enumerate() {
            remap.insert(old, dense as u32);
        }

        w.u32(live.len() as u32);
        for &old in &live {
            let node = &self.nodes[old as usize];
            w.code(node.pattern.bits());
            w.code(node.pattern.mask());
            w.u32(node.frequency);
            w.u32(node.children.len() as u32);
            for c in &node.children {
                w.u32(remap[c]);
            }
            match &node.leaf {
                None => w.u8(0),
                Some(leaf) => {
                    w.u8(1);
                    w.code(&leaf.code);
                    w.u32(leaf.ids.len() as u32);
                    for id in &leaf.ids {
                        w.u64(*id);
                    }
                }
            }
        }
        w.u32(self.roots.len() as u32);
        for r in &self.roots {
            w.u32(remap[r]);
        }
        w.u32(self.buffer.len() as u32);
        for (code, id) in &self.buffer {
            w.code(code);
            w.u64(*id);
        }
        // Version 2 integrity footer: FNV-1a over everything above. The
        // blob crosses the distributed cache and the DFS hop of Figure 5;
        // the footer lets a corrupted copy be rejected *before* H-Search
        // trusts its pruning structure.
        let digest = fnv64(&w.buf);
        w.u64(digest);
        w.buf
    }

    /// Decodes an index from its wire format, validating all references
    /// and the path invariant. The decoded index uses `config` for future
    /// maintenance operations (`keep_leaf_ids` is taken from the blob).
    pub fn from_bytes(bytes: &[u8], config: DhaConfig) -> Result<Self, DecodeError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        // Verify the integrity footer (checked right after the header so
        // corruption is reported as such, not as some downstream
        // structural error), then parse only the body before it.
        if bytes.len() < r.pos + FOOTER_LEN {
            return Err(DecodeError::Truncated);
        }
        let (body, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
        let declared = u64::from_le_bytes(footer.try_into().expect("footer is 8 bytes"));
        if fnv64(body) != declared {
            return Err(DecodeError::ChecksumMismatch);
        }
        let mut r = Reader {
            buf: body,
            pos: r.pos,
        };
        let keep_leaf_ids = r.u8()? != 0;
        let code_len = r.u16()? as usize;
        if code_len == 0 {
            return Err(DecodeError::Corrupt("zero code length"));
        }

        let node_count = r.u32()? as usize;
        let mut nodes: Vec<Node> = Vec::with_capacity(node_count);
        let mut len_total = 0usize;
        for _ in 0..node_count {
            let bits = r.code(code_len)?;
            let mask = r.code(code_len)?;
            let pattern =
                MaskedCode::new(bits, mask).map_err(|_| DecodeError::Corrupt("pattern"))?;
            let frequency = r.u32()?;
            let child_count = r.u32()? as usize;
            if child_count > node_count {
                return Err(DecodeError::Corrupt("child count"));
            }
            let mut children = Vec::with_capacity(child_count);
            for _ in 0..child_count {
                children.push(r.u32()?);
            }
            let leaf = match r.u8()? {
                0 => None,
                1 => {
                    let code = r.code(code_len)?;
                    let id_count = r.u32()? as usize;
                    let mut ids = Vec::with_capacity(id_count.min(1 << 20));
                    for _ in 0..id_count {
                        ids.push(r.u64()?);
                    }
                    Some(LeafData { code, ids })
                }
                _ => return Err(DecodeError::Corrupt("node kind")),
            };
            nodes.push(Node {
                pattern,
                children,
                frequency,
                leaf,
                alive: true,
            });
        }
        // Validate child references.
        for n in &nodes {
            for &c in &n.children {
                if c as usize >= node_count {
                    return Err(DecodeError::DanglingReference(c));
                }
            }
        }
        let root_count = r.u32()? as usize;
        let mut roots = Vec::with_capacity(root_count);
        for _ in 0..root_count {
            let id = r.u32()?;
            if id as usize >= node_count {
                return Err(DecodeError::DanglingReference(id));
            }
            roots.push(id);
        }
        let buffered = r.u32()? as usize;
        let mut buffer = Vec::with_capacity(buffered.min(1 << 20));
        for _ in 0..buffered {
            let code = r.code(code_len)?;
            let id = r.u64()?;
            buffer.push((code, id));
        }
        if r.pos != body.len() {
            return Err(DecodeError::Corrupt("trailing bytes"));
        }

        // Rebuild the leaf map and the tuple count from the decoded forest.
        let mut leaves = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            if let Some(leaf) = &n.leaf {
                len_total += n.frequency as usize;
                if keep_leaf_ids {
                    leaves.insert(leaf.code.clone(), i as NodeId);
                }
            }
        }

        let idx = DynamicHaIndex {
            code_len,
            nodes,
            roots,
            leaves,
            buffer,
            config: DhaConfig {
                keep_leaf_ids,
                ..config
            },
            len: len_total,
            epoch: 0,
            flat: None,
        };
        // Structural validation (disjoint masks, full coverage, code
        // reconstruction) — a corrupted blob must not produce an index
        // that silently returns wrong answers.
        idx.try_check_invariants().map_err(DecodeError::Corrupt)?;
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_matches_oracle, clustered_dataset, random_dataset};
    use crate::{HammingIndex, MutableIndex};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_preserves_results_and_structure() {
        let data = clustered_dataset(500, 32, 5, 3, 201);
        let idx = DynamicHaIndex::build(data.clone());
        let blob = idx.to_bytes();
        let back = DynamicHaIndex::from_bytes(&blob, DhaConfig::default()).unwrap();
        back.check_invariants();
        assert_eq!(back.len(), idx.len());
        assert_eq!(back.leaf_count(), idx.leaf_count());
        assert_eq!(back.internal_node_count(), idx.internal_node_count());
        let mut rng = StdRng::seed_from_u64(202);
        for _ in 0..8 {
            let q = ha_bitcode::BinaryCode::random(32, &mut rng);
            let h = rng.gen_range(0..8);
            assert_matches_oracle(back.search(&q, h), &data, &q, h, "decoded");
        }
    }

    #[test]
    fn roundtrip_after_maintenance_compacts_dead_slots() {
        let data = random_dataset(200, 24, 203);
        let mut idx = DynamicHaIndex::build(data.clone());
        for (c, id) in data.iter().take(80) {
            assert!(idx.delete(c, *id));
        }
        let blob = idx.to_bytes();
        let back = DynamicHaIndex::from_bytes(&blob, DhaConfig::default()).unwrap();
        assert_eq!(back.len(), 120);
        // Dead slots are gone: arena is exactly the live node count.
        assert_eq!(
            back.nodes.len(),
            back.leaf_count() + back.internal_node_count()
        );
        let live: Vec<_> = data[80..].to_vec();
        let mut rng = StdRng::seed_from_u64(204);
        let q = ha_bitcode::BinaryCode::random(24, &mut rng);
        assert_matches_oracle(back.search(&q, 5), &live, &q, 5, "compacted");
    }

    #[test]
    fn leafless_roundtrip() {
        let data = random_dataset(150, 32, 205);
        let idx = DynamicHaIndex::build_with(
            data.clone(),
            DhaConfig {
                keep_leaf_ids: false,
                ..DhaConfig::default()
            },
        );
        let blob = idx.to_bytes();
        let back = DynamicHaIndex::from_bytes(&blob, DhaConfig::default()).unwrap();
        assert!(!back.config().keep_leaf_ids, "flag travels in the blob");
        let q = data[3].0.clone();
        let got = back.search_codes(&q, 0);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, q);
    }

    #[test]
    fn buffered_inserts_roundtrip() {
        let data = random_dataset(50, 16, 206);
        let mut idx = DynamicHaIndex::build(data.clone());
        let fresh = ha_bitcode::BinaryCode::from_u64(0xABCD, 16);
        idx.insert(fresh.clone(), 999);
        assert!(!idx.buffer.is_empty());
        let back = DynamicHaIndex::from_bytes(&idx.to_bytes(), DhaConfig::default()).unwrap();
        assert!(back.search(&fresh, 0).contains(&999));
        assert_eq!(back.len(), 51);
    }

    #[test]
    fn estimated_size_tracks_actual_size() {
        let data = clustered_dataset(1000, 32, 4, 2, 207);
        let idx = DynamicHaIndex::build(data);
        let actual = idx.to_bytes().len();
        let estimate = idx.serialized_bytes(true);
        let ratio = actual as f64 / estimate as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "estimate {estimate} vs actual {actual} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            DynamicHaIndex::from_bytes(b"nope", DhaConfig::default()),
            Err(DecodeError::BadMagic)
        ));
        let idx = DynamicHaIndex::build(random_dataset(20, 16, 208));
        let mut blob = idx.to_bytes();
        // Wrong version.
        let mut v = blob.clone();
        v[4] = 99;
        assert!(matches!(
            DynamicHaIndex::from_bytes(&v, DhaConfig::default()),
            Err(DecodeError::BadVersion(99))
        ));
        // Truncation anywhere must error, never panic.
        for cut in [5usize, 10, blob.len() / 2, blob.len() - 1] {
            let r = DynamicHaIndex::from_bytes(&blob[..cut], DhaConfig::default());
            assert!(r.is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        blob.push(0);
        assert!(DynamicHaIndex::from_bytes(&blob, DhaConfig::default()).is_err());
    }

    #[test]
    fn checksum_footer_detects_body_corruption() {
        let idx = DynamicHaIndex::build(random_dataset(40, 16, 211));
        let blob = idx.to_bytes();
        // Any single-byte flip in the body (past the header, before the
        // footer) must be caught by the footer, reported as corruption.
        for pos in [5usize, 7, blob.len() / 3, blob.len() - FOOTER_LEN - 1] {
            let mut bad = blob.clone();
            bad[pos] ^= 0x40;
            assert!(
                matches!(
                    DynamicHaIndex::from_bytes(&bad, DhaConfig::default()),
                    Err(DecodeError::ChecksumMismatch)
                ),
                "flip at {pos}"
            );
        }
        // A flipped footer byte is equally fatal.
        let mut bad = blob.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            DynamicHaIndex::from_bytes(&bad, DhaConfig::default()),
            Err(DecodeError::ChecksumMismatch)
        ));
        // The pristine blob still decodes.
        assert!(DynamicHaIndex::from_bytes(&blob, DhaConfig::default()).is_ok());
    }

    #[test]
    fn byte_flip_fuzz_never_panics_and_never_lies() {
        // Flip single bytes all over the blob: decoding must either error
        // out or yield a structurally valid index (check_invariants runs
        // inside from_bytes) — never panic, never a silently-corrupt tree.
        let data = random_dataset(60, 24, 209);
        let idx = DynamicHaIndex::build(data);
        let blob = idx.to_bytes();
        let mut rng = StdRng::seed_from_u64(210);
        for _ in 0..200 {
            let mut mutated = blob.clone();
            let pos = rng.gen_range(0..mutated.len());
            mutated[pos] ^= 1u8 << rng.gen_range(0..8u32);
            if let Ok(decoded) = DynamicHaIndex::from_bytes(&mutated, DhaConfig::default()) {
                // Valid decode: the invariant held; searching must not
                // panic either.
                let q = ha_bitcode::BinaryCode::zero(24);
                let _ = decoded.search_codes(&q, 24);
            }
        }
    }
}
