//! H-Insert and H-Delete (§4.5, Algorithm 2), plus the insert buffer.
//!
//! Deletion note: Algorithm 2 as printed decrements the frequency of
//! *every* node whose pattern bit-matches the deleted tuple, which can
//! over-decrement when unrelated subtrees happen to match. We instead
//! locate the exact root-to-leaf path of the tuple's code (a depth-first
//! search using `bitmatch` to steer, exactly like the algorithm) and
//! decrement only along that path — same traversal, strictly correct
//! bookkeeping.

use ha_bitcode::BinaryCode;

use super::{DynamicHaIndex, NodeId};
use crate::TupleId;

/// Depth-first search for the path from some root to `target`, following
/// only nodes whose pattern bit-matches `code` (Algorithm 2's `bitmatch`).
fn path_to_leaf(idx: &DynamicHaIndex, target: NodeId, code: &BinaryCode) -> Option<Vec<NodeId>> {
    fn dfs(
        idx: &DynamicHaIndex,
        node: NodeId,
        target: NodeId,
        code: &BinaryCode,
        path: &mut Vec<NodeId>,
    ) -> bool {
        let n = &idx.nodes[node as usize];
        if !n.alive || !n.pattern.matches(code) {
            return false;
        }
        path.push(node);
        if node == target {
            return true;
        }
        for &c in &n.children {
            if dfs(idx, c, target, code, path) {
                return true;
            }
        }
        path.pop();
        false
    }

    let mut path = Vec::new();
    for &root in &idx.roots {
        if dfs(idx, root, target, code, &mut path) {
            return Some(path);
        }
        debug_assert!(path.is_empty());
    }
    None
}

pub(super) fn h_insert(idx: &mut DynamicHaIndex, code: BinaryCode, id: TupleId) {
    if idx.code_len == 0 {
        idx.code_len = code.len();
    }
    assert_eq!(code.len(), idx.code_len, "code length mismatch");
    idx.epoch += 1;
    // Fast path: the code already has a leaf — extend it and bump
    // frequencies along its path.
    if idx.config.keep_leaf_ids {
        if let Some(&leaf) = idx.leaves.get(&code) {
            let path = path_to_leaf(idx, leaf, &code).expect("leaf map entry must be reachable");
            for nid in path {
                idx.nodes[nid as usize].frequency += 1;
            }
            idx.nodes[leaf as usize]
                .leaf
                .as_mut()
                .expect("leaf node")
                .ids
                .push(id);
            idx.len += 1;
            return;
        }
    }
    // Otherwise buffer; searches scan the buffer until it is flushed.
    idx.buffer.push((code, id));
    if idx.buffer.len() >= idx.config.insert_buffer_cap {
        flush_buffer(idx);
    }
}

/// Bulk-builds the buffered tuples into a mini HA-Index and merges it in
/// ("a process similar to H-Build is invoked to append these newly
/// inserted tuples into the existing HA-Index").
pub(super) fn flush_buffer(idx: &mut DynamicHaIndex) {
    if idx.buffer.is_empty() {
        return;
    }
    let pending = std::mem::take(&mut idx.buffer);
    let mini = DynamicHaIndex::build_with(pending, idx.config.clone());
    super::merge::merge_into(idx, mini);
    idx.epoch += 1;
}

pub(super) fn h_delete(idx: &mut DynamicHaIndex, code: &BinaryCode, id: TupleId) -> bool {
    // Buffered tuples are deleted from the buffer directly.
    if let Some(pos) = idx.buffer.iter().position(|(c, i)| *i == id && c == code) {
        idx.buffer.swap_remove(pos);
        idx.epoch += 1;
        return true;
    }
    let Some(&leaf) = idx.leaves.get(code) else {
        return false;
    };
    {
        let data = idx.nodes[leaf as usize].leaf.as_ref().expect("leaf node");
        if !data.ids.contains(&id) {
            return false;
        }
    }
    let path = path_to_leaf(idx, leaf, code).expect("leaf map entry must be reachable");
    // Decrement frequencies along the actual path (Algorithm 2 lines 5/16,
    // restricted to the true containing path).
    for &nid in &path {
        idx.nodes[nid as usize].frequency -= 1;
    }
    let data = idx.nodes[leaf as usize].leaf.as_mut().expect("leaf node");
    let pos = data
        .ids
        .iter()
        .position(|&x| x == id)
        .expect("checked above");
    data.ids.swap_remove(pos);
    idx.len -= 1;
    idx.epoch += 1;

    // "If one node contains 0 or less entries, it is removed."
    if idx.nodes[leaf as usize].frequency == 0 {
        idx.nodes[leaf as usize].alive = false;
        idx.leaves.remove(code);
        // Unlink dead nodes bottom-up; an internal node dies when it has no
        // live children left.
        for j in (0..path.len().saturating_sub(1)).rev() {
            let parent = path[j];
            let child = path[j + 1];
            if !idx.nodes[child as usize].alive {
                idx.nodes[parent as usize].children.retain(|&c| c != child);
            }
            let p = &idx.nodes[parent as usize];
            if p.leaf.is_none() && p.children.is_empty() {
                idx.nodes[parent as usize].alive = false;
            } else {
                break;
            }
        }
        let head = path[0];
        if !idx.nodes[head as usize].alive {
            idx.roots.retain(|&r| r != head);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_matches_oracle, paper_table_s, random_dataset};
    use crate::{DhaConfig, HammingIndex, MutableIndex};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn delete_then_reinsert_restores_results() {
        let data = paper_table_s();
        let mut idx = DynamicHaIndex::build(data.clone());
        let (code, id) = data[3].clone();
        assert!(idx.delete(&code, id));
        assert!(!idx.delete(&code, id), "double delete fails");
        let q: BinaryCode = "101100010".parse().unwrap();
        let mut got = idx.search(&q, 3);
        got.sort_unstable();
        assert_eq!(got, vec![0, 4, 6], "t3 gone");
        idx.insert(code, id);
        assert_matches_oracle(idx.search(&q, 3), &data, &q, 3, "dha-after-reinsert");
    }

    #[test]
    fn buffered_inserts_are_searchable_immediately() {
        let mut idx = DynamicHaIndex::build(paper_table_s());
        let fresh: BinaryCode = "101100011".parse().unwrap();
        idx.insert(fresh.clone(), 100);
        // Still buffered (small insert count), but searches must see it.
        assert!(!idx.buffer.is_empty());
        assert!(idx.search(&fresh, 0).contains(&100));
        assert_eq!(idx.len(), 9);
        // Deleting a buffered tuple works too.
        assert!(idx.delete(&fresh, 100));
        assert!(idx.search(&fresh, 0).is_empty());
    }

    #[test]
    fn buffer_flush_preserves_results() {
        let data = random_dataset(200, 32, 81);
        let (initial, late) = data.split_at(100);
        let mut idx = DynamicHaIndex::build_with(
            initial.to_vec(),
            DhaConfig {
                insert_buffer_cap: 16, // force several flushes
                ..DhaConfig::default()
            },
        );
        for (c, id) in late {
            idx.insert(c.clone(), *id);
        }
        idx.flush();
        assert!(idx.buffer.is_empty());
        idx.check_invariants();
        let mut rng = StdRng::seed_from_u64(82);
        for h in [0, 3, 6] {
            let q = BinaryCode::random(32, &mut rng);
            assert_matches_oracle(idx.search(&q, h), &data, &q, h, "dha-flushed");
        }
    }

    #[test]
    fn incremental_build_equals_bulk_build_results() {
        let data = random_dataset(150, 32, 83);
        let bulk = DynamicHaIndex::build(data.clone());
        let mut inc = DynamicHaIndex::empty(
            32,
            DhaConfig {
                insert_buffer_cap: 32,
                ..DhaConfig::default()
            },
        );
        for (c, id) in &data {
            inc.insert(c.clone(), *id);
        }
        inc.flush();
        inc.check_invariants();
        let mut rng = StdRng::seed_from_u64(84);
        for _ in 0..8 {
            let q = BinaryCode::random(32, &mut rng);
            let h = rng.gen_range(0..8);
            let mut a = bulk.search(&q, h);
            let mut b = inc.search(&q, h);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "h={h}");
        }
    }

    #[test]
    fn delete_all_tuples_empties_forest() {
        let data = random_dataset(80, 24, 85);
        let mut idx = DynamicHaIndex::build(data.clone());
        for (c, id) in &data {
            assert!(idx.delete(c, *id), "delete {id}");
        }
        assert_eq!(idx.len(), 0);
        assert!(idx.roots.is_empty(), "all roots should be gone");
        let q = BinaryCode::zero(24);
        assert!(idx.search(&q, 24).is_empty());
    }

    #[test]
    fn frequencies_track_subtree_sizes() {
        let data = paper_table_s();
        let mut idx = DynamicHaIndex::build(data.clone());
        let total: u32 = idx
            .roots
            .iter()
            .map(|&r| idx.nodes[r as usize].frequency)
            .sum();
        assert_eq!(total, 8);
        idx.delete(&data[0].0, 0);
        let total: u32 = idx
            .roots
            .iter()
            .map(|&r| idx.nodes[r as usize].frequency)
            .sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn duplicate_code_insert_takes_fast_path() {
        let data = paper_table_s();
        let mut idx = DynamicHaIndex::build(data.clone());
        // Re-insert an existing code with a new id: no buffering needed.
        idx.insert(data[2].0.clone(), 55);
        assert!(idx.buffer.is_empty(), "fast path should not buffer");
        let mut got = idx.search(&data[2].0, 0);
        got.sort_unstable();
        assert_eq!(got, vec![2, 55]);
    }
}
