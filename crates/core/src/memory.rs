//! Memory accounting shared by the indexes (Table 4's space column).

/// Itemized memory usage of an index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Bytes spent on structural nodes (tree/graph vertices, edges).
    pub structure_bytes: usize,
    /// Bytes spent on stored codes / segment copies.
    pub code_bytes: usize,
    /// Bytes spent on tuple-id payloads (leaf contents, buckets).
    pub payload_bytes: usize,
}

impl MemoryReport {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.structure_bytes + self.code_bytes + self.payload_bytes
    }
}

/// Approximate heap size of a `Vec<T>` (capacity, not length — that is what
/// the allocator actually handed out).
pub(crate) fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Approximate heap size of a `HashMap<K, V>`: hashbrown stores one control
/// byte plus one `(K, V)` slot per bucket; buckets ≈ capacity / load-factor.
pub(crate) fn map_bytes<K, V>(m: &std::collections::HashMap<K, V>) -> usize {
    let slot = std::mem::size_of::<(K, V)>() + 1;
    // `capacity()` is the usable capacity; the backing table is ~8/7 larger.
    (m.capacity() * 8 / 7) * slot
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn totals_add_up() {
        let r = MemoryReport {
            structure_bytes: 10,
            code_bytes: 20,
            payload_bytes: 30,
        };
        assert_eq!(r.total(), 60);
    }

    #[test]
    fn vec_bytes_follows_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        assert_eq!(vec_bytes(&v), 128);
        v.push(1);
        assert_eq!(vec_bytes(&v), 128, "length does not matter");
    }

    #[test]
    fn map_bytes_nonzero_once_populated() {
        let mut m: HashMap<u64, u64> = HashMap::new();
        assert_eq!(map_bytes(&m), 0);
        m.insert(1, 2);
        assert!(map_bytes(&m) > 0);
    }
}
