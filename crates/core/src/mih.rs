//! Multi-Index Hashing (Norouzi, Punjani & Fleet) — the second exact
//! search backend beside the HA-Index.
//!
//! The code is split into `m` chunks ([`Segmentation`] — balanced widths,
//! remainder bits front-loaded) and each chunk keys one hash table mapping
//! chunk value → rows. A query with threshold `h = m·r + a` (`0 <= a < m`)
//! probes the first `a + 1` tables at radius `r` and the rest at `r − 1`:
//! the generalized pigeonhole principle (see [`ha_bitcode::chunk`])
//! guarantees every answer lands in at least one probed bucket, so — unlike
//! the Manku-style [`crate::MultiHashTable`], which is complete only up to
//! the table count fixed at build time — MIH is complete for **every**
//! `h`. Probing enumerates all chunk values within the per-chunk radius
//! ([`for_each_neighbor`]); candidates are deduplicated with a row bitmap
//! and verified against the full code with an early-exit word-slice
//! distance ([`distance_within_words`]).
//!
//! The enumeration cost `Σ_k Σ_i C(w_k, i)` is known exactly before any
//! table is touched ([`MihIndex::probe_estimate`]); when it reaches the
//! row count the index falls back to scanning its own flat row storage,
//! so the worst case is a linear scan, never a combinatorial blowup. This
//! is the regime structure the query planner's cost model rides on: few
//! wide chunks (large `n`) keep buckets selective, and the probe budget
//! `⌊h/m⌋` stays small exactly when `h` is small relative to the code
//! width — sparse, wide codes, where the HA-Flat traversal loses steam.

use std::collections::HashMap;

use ha_bitcode::chunk::{distance_within_words, for_each_neighbor, neighborhood_size};
use ha_bitcode::prefetch::{prefetch_index, PREFETCH_DISTANCE};
use ha_bitcode::segment::Segmentation;
use ha_bitcode::BinaryCode;

use crate::memory::{map_bytes, vec_bytes, MemoryReport};
use crate::{HammingIndex, MutableIndex, TupleId};

/// Multi-Index Hashing over fixed-length binary codes.
///
/// Rows live in a flat structure-of-arrays store (`stride` words per code,
/// the exact [`BinaryCode::words`] layout); the `m` chunk tables hold row
/// indexes, so codes are stored once no matter how many tables there are —
/// the replication the paper criticises Manku's method for is avoided by
/// construction.
///
/// ```
/// use ha_core::{HammingIndex, MihIndex};
/// use ha_bitcode::BinaryCode;
///
/// let index = MihIndex::build(16, (0..64u64).map(|i| (BinaryCode::from_u64(i, 16), i)));
/// let q = BinaryCode::from_u64(5, 16);
/// let mut hits = index.search(&q, 1);
/// hits.sort_unstable();
/// assert_eq!(hits, vec![1, 4, 5, 7, 13, 21, 37]); // distance <= 1 from 5
/// assert_eq!(index.complete_up_to(), None);       // exact at EVERY h
/// ```
#[derive(Clone, Debug)]
pub struct MihIndex {
    code_len: usize,
    stride: usize,
    seg: Segmentation,
    /// One table per chunk: chunk value → rows whose code has that value.
    tables: Vec<HashMap<u64, Vec<u32>>>,
    /// Flat row storage, `stride` words per row.
    row_words: Vec<u64>,
    ids: Vec<TupleId>,
    live: Vec<bool>,
    tombstones: usize,
}

impl MihIndex {
    /// Chunk count minimising probe cost for an expected dataset size:
    /// `m ≈ bits / log2(n)` (Norouzi et al. §3.3 — chunk width near
    /// `log2 n` keeps expected bucket occupancy at O(1)), clamped so every
    /// chunk fits a `u64` key and no chunk is empty.
    pub fn auto_chunks(code_len: usize, expected_len: usize) -> usize {
        assert!(code_len >= 1, "code_len must be >= 1");
        let lg = (expected_len.max(2) as f64).log2();
        let m = (code_len as f64 / lg).round() as usize;
        m.clamp(code_len.div_ceil(64), code_len)
    }

    /// An empty index with an explicit chunk count.
    ///
    /// # Panics
    /// If `code_len` is 0, or `chunks` is outside
    /// `[ceil(code_len / 64), code_len]` — a chunk wider than 64 bits
    /// cannot key a `u64` table, and the constructor rejects such
    /// configurations loudly instead of silently adjusting the count.
    pub fn new(code_len: usize, chunks: usize) -> Self {
        assert!(code_len >= 1, "code_len must be >= 1");
        assert!(
            chunks >= code_len.div_ceil(64),
            "{chunks} chunks over {code_len} bits would exceed the 64-bit \
             chunk-key width; need at least {}",
            code_len.div_ceil(64)
        );
        let seg = Segmentation::new(code_len, chunks);
        debug_assert!(seg.max_width() <= 64);
        MihIndex {
            code_len,
            stride: code_len.div_ceil(64),
            tables: vec![HashMap::new(); chunks],
            seg,
            row_words: Vec::new(),
            ids: Vec::new(),
            live: Vec::new(),
            tombstones: 0,
        }
    }

    /// An empty index whose chunk count is tuned for an expected number of
    /// rows ([`MihIndex::auto_chunks`]).
    pub fn with_expected_len(code_len: usize, expected_len: usize) -> Self {
        Self::new(code_len, Self::auto_chunks(code_len, expected_len))
    }

    /// Builds from an iterator of `(code, id)` pairs, sizing the chunk
    /// count from the actual item count.
    ///
    /// # Panics
    /// If any code's length differs from `code_len`.
    pub fn build(code_len: usize, items: impl IntoIterator<Item = (BinaryCode, TupleId)>) -> Self {
        let items: Vec<_> = items.into_iter().collect();
        let mut idx = Self::with_expected_len(code_len, items.len());
        for (code, id) in items {
            idx.insert(code, id);
        }
        idx
    }

    /// Number of chunk tables.
    pub fn chunks(&self) -> usize {
        self.seg.count()
    }

    /// Per-chunk probe radii for threshold `h`: the first `h % m + 1`
    /// chunks get `⌊h/m⌋`, the rest `⌊h/m⌋ − 1` (`None` = not probed,
    /// which happens exactly when `⌊h/m⌋ = 0`).
    fn probe_radii(&self, h: u32) -> impl Iterator<Item = (usize, Option<u32>)> + '_ {
        let m = self.seg.count() as u32;
        let r = h / m;
        let a = h % m;
        (0..self.seg.count()).map(move |k| {
            let radius = if (k as u32) <= a {
                Some(r)
            } else {
                r.checked_sub(1)
            };
            (k, radius)
        })
    }

    /// Exact number of bucket lookups a `search(…, h)` performs before
    /// verification — `Σ` over probed chunks of the chunk-neighborhood
    /// size, saturating. Query-independent; the planner's probe-cost term.
    pub fn probe_estimate(&self, h: u32) -> u64 {
        let mut total = 0u64;
        for (k, radius) in self.probe_radii(h) {
            if let Some(radius) = radius {
                let (_, width) = self.seg.bounds(k);
                total = total.saturating_add(neighborhood_size(width as u32, radius));
            }
        }
        total
    }

    /// True if `search(…, h)` would take the linear-scan fallback because
    /// the probe enumeration alone costs as much as scanning every row.
    pub fn would_scan(&self, h: u32) -> bool {
        self.probe_estimate(h) >= self.ids.len() as u64
    }

    fn row(&self, row: usize) -> &[u64] {
        &self.row_words[row * self.stride..(row + 1) * self.stride]
    }

    /// Linear scan over the flat row storage — the fallback path, also
    /// exposed as the planner's "linear scan" backend so that routing to
    /// `Linear` needs no second copy of the data.
    pub fn scan_with_distances(&self, query: &BinaryCode, h: u32) -> Vec<(TupleId, u32)> {
        assert_eq!(query.len(), self.code_len, "query length mismatch");
        let qw = query.words();
        let mut out = Vec::new();
        for row in 0..self.ids.len() {
            if !self.live[row] {
                continue;
            }
            if let Some(d) = distance_within_words(qw, self.row(row), h) {
                out.push((self.ids[row], d));
            }
        }
        out.sort_unstable_by_key(|&(id, d)| (id, d));
        out
    }

    /// [`MihIndex::scan_with_distances`] without the distances.
    pub fn scan(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        self.scan_with_distances(query, h).into_iter().map(|(id, _)| id).collect()
    }

    /// Search returning `(id, exact distance)` pairs, sorted by id — the
    /// canonical order every entry point of this index produces, so probe
    /// order never leaks into answers.
    pub fn search_with_distances(&self, query: &BinaryCode, h: u32) -> Vec<(TupleId, u32)> {
        assert_eq!(query.len(), self.code_len, "query length mismatch");
        if self.would_scan(h) {
            return self.scan_with_distances(query, h);
        }
        let qw = query.words();
        let mut seen = vec![false; self.ids.len()];
        let mut out = Vec::new();
        for (k, radius) in self.probe_radii(h) {
            let Some(radius) = radius else { continue };
            let value = self.seg.extract(query, k);
            let (_, width) = self.seg.bounds(k);
            let table = &self.tables[k];
            for_each_neighbor(value, width as u32, radius, &mut |v| {
                let Some(bucket) = table.get(&v) else { return };
                for (j, &row) in bucket.iter().enumerate() {
                    // Bucket rows land anywhere in the flat store;
                    // hint the row a few candidates ahead so its code
                    // words arrive while this one is being verified.
                    if let Some(&ahead) = bucket.get(j + PREFETCH_DISTANCE) {
                        prefetch_index(&self.row_words, ahead as usize * self.stride);
                    }
                    let row = row as usize;
                    if std::mem::replace(&mut seen[row], true) {
                        continue;
                    }
                    if let Some(d) = distance_within_words(qw, self.row(row), h) {
                        out.push((self.ids[row], d));
                    }
                }
            });
        }
        out.sort_unstable_by_key(|&(id, d)| (id, d));
        out
    }

    /// One [`HammingIndex::search`] per query. MIH probes are per-query
    /// hash lookups with no shared traversal to amortize, so this is a
    /// plain loop — provided for signature parity with
    /// [`crate::DynamicHaIndex::batch_search`].
    pub fn batch_search(&self, queries: &[BinaryCode], h: u32) -> Vec<Vec<TupleId>> {
        queries.iter().map(|q| self.search(q, h)).collect()
    }

    /// Itemized memory usage (Table 4's space column).
    pub fn memory_report(&self) -> MemoryReport {
        let mut structure = vec_bytes(&self.tables);
        let mut payload = vec_bytes(&self.ids) + vec_bytes(&self.live);
        for table in &self.tables {
            structure += map_bytes(table);
            payload += table.values().map(vec_bytes).sum::<usize>();
        }
        MemoryReport {
            structure_bytes: structure,
            code_bytes: vec_bytes(&self.row_words),
            payload_bytes: payload,
        }
    }
}

impl HammingIndex for MihIndex {
    fn name(&self) -> &'static str {
        "MIH"
    }

    fn len(&self) -> usize {
        self.ids.len() - self.tombstones
    }

    fn code_len(&self) -> usize {
        self.code_len
    }

    fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        self.search_with_distances(query, h)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        self.memory_report().total()
    }
}

impl MutableIndex for MihIndex {
    fn insert(&mut self, code: BinaryCode, id: TupleId) {
        assert_eq!(code.len(), self.code_len, "code length mismatch");
        let row = self.ids.len() as u32;
        self.row_words.extend_from_slice(code.words());
        self.ids.push(id);
        self.live.push(true);
        for k in 0..self.seg.count() {
            let value = self.seg.extract(&code, k);
            self.tables[k].entry(value).or_default().push(row);
        }
    }

    fn delete(&mut self, code: &BinaryCode, id: TupleId) -> bool {
        assert_eq!(code.len(), self.code_len, "code length mismatch");
        // Locate the row via the first chunk's bucket — every stored row
        // appears in every table, so one bucket suffices.
        let value = self.seg.extract(code, 0);
        let Some(bucket) = self.tables[0].get(&value) else {
            return false;
        };
        let Some(row) = bucket.iter().copied().map(|r| r as usize).find(|&r| {
            self.live[r] && self.ids[r] == id && self.row(r) == code.words()
        }) else {
            return false;
        };
        // Unlink from every chunk table, dropping emptied buckets.
        for k in 0..self.seg.count() {
            let value = self.seg.extract(code, k);
            if let Some(bucket) = self.tables[k].get_mut(&value) {
                if let Some(pos) = bucket.iter().position(|&r| r as usize == row) {
                    bucket.swap_remove(pos);
                }
                if bucket.is_empty() {
                    self.tables[k].remove(&value);
                }
            }
        }
        self.live[row] = false;
        self.tombstones += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_matches_oracle, clustered_dataset, random_dataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn auto_chunks_tracks_dataset_size() {
        // 64-bit codes, 30k rows: log2(30000) ≈ 14.9 → m ≈ 4.
        assert_eq!(MihIndex::auto_chunks(64, 30_000), 4);
        // 512-bit codes, 6k rows: log2(6000) ≈ 12.6 → m ≈ 41.
        assert_eq!(MihIndex::auto_chunks(512, 6_000), 41);
        // Tiny datasets want chunk width ≈ log2(n) → ~1-bit chunks.
        assert_eq!(MihIndex::auto_chunks(512, 2), 512);
        assert_eq!(MihIndex::auto_chunks(32, 0), 32);
        // Huge n drives m down to the one-chunk-per-u64-word floor.
        assert_eq!(MihIndex::auto_chunks(64, usize::MAX), 1);
        assert_eq!(MihIndex::auto_chunks(512, usize::MAX), 8);
    }

    #[test]
    #[should_panic(expected = "64-bit")]
    fn too_few_chunks_for_wide_codes_panics() {
        MihIndex::new(512, 5); // 103-bit chunks cannot key a u64
    }

    #[test]
    fn probe_estimate_matches_pigeonhole_budget() {
        let idx = MihIndex::new(64, 4); // 16-bit chunks
        // h=3, m=4: r=0, a=3 → all four chunks at radius 0 → 4 probes.
        assert_eq!(idx.probe_estimate(3), 4);
        // h=4: r=1, a=0 → chunk 0 at radius 1 (17), chunks 1..4 at 0 (1).
        assert_eq!(idx.probe_estimate(4), 17 + 3);
        // h=0: a single exact probe on chunk 0.
        assert_eq!(idx.probe_estimate(0), 1);
    }

    #[test]
    fn search_matches_oracle_across_regimes() {
        for (code_len, n, clustered) in
            [(32usize, 400usize, true), (64, 400, false), (128, 200, true), (512, 120, false)]
        {
            let data = if clustered {
                clustered_dataset(n, code_len, 4, 3, 77)
            } else {
                random_dataset(n, code_len, 77)
            };
            let idx = MihIndex::build(code_len, data.clone());
            assert_eq!(idx.len(), n);
            let mut rng = StdRng::seed_from_u64(123);
            for trial in 0..4 {
                let q = if trial % 2 == 0 {
                    data[trial * 7 % n].0.clone()
                } else {
                    BinaryCode::random(code_len, &mut rng)
                };
                for h in [0u32, 1, 3, 8, code_len as u32] {
                    assert_matches_oracle(
                        idx.search(&q, h),
                        &data,
                        &q,
                        h,
                        &format!("bits={code_len} trial={trial}"),
                    );
                }
            }
        }
    }

    #[test]
    fn scan_fallback_engages_and_agrees() {
        let data = random_dataset(60, 32, 5);
        let idx = MihIndex::build(32, data.clone());
        let h = 30; // probe estimate dwarfs 60 rows
        assert!(idx.would_scan(h));
        let q = BinaryCode::random(32, &mut StdRng::seed_from_u64(6));
        assert_eq!(idx.search_with_distances(&q, h), idx.scan_with_distances(&q, h));
        assert_matches_oracle(idx.search(&q, h), &data, &q, h, "fallback");
    }

    #[test]
    fn delete_then_insert_round_trips() {
        let data = random_dataset(80, 64, 9);
        let mut idx = MihIndex::build(64, data.clone());
        let (code, id) = data[17].clone();
        assert!(idx.delete(&code, id));
        assert!(!idx.delete(&code, id), "double delete must fail");
        assert_eq!(idx.len(), 79);
        assert!(!idx.search(&code, 0).contains(&id));
        idx.insert(code.clone(), id);
        assert_eq!(idx.len(), 80);
        assert!(idx.search(&code, 0).contains(&id));
        // Deleting an absent code whose chunk-0 bucket doesn't exist.
        let absent = BinaryCode::random(64, &mut StdRng::seed_from_u64(1));
        let _ = idx.delete(&absent, 999_999);
    }

    #[test]
    fn duplicate_codes_under_distinct_ids_coexist() {
        let code = BinaryCode::from_u64(42, 32);
        let mut idx = MihIndex::new(32, 4);
        idx.insert(code.clone(), 1);
        idx.insert(code.clone(), 2);
        assert_eq!(idx.search(&code, 0), vec![1, 2]);
        assert!(idx.delete(&code, 1));
        assert_eq!(idx.search(&code, 0), vec![2]);
    }

    #[test]
    fn results_are_id_sorted_regardless_of_path() {
        let data = clustered_dataset(300, 64, 3, 2, 31);
        let idx = MihIndex::build(64, data.clone());
        let q = data[5].0.clone();
        for h in [2u32, 6, 40] {
            let got = idx.search(&q, h);
            let mut sorted = got.clone();
            sorted.sort_unstable();
            assert_eq!(got, sorted, "h={h}: canonical id order");
        }
    }

    #[test]
    fn memory_report_counts_all_arenas() {
        let idx = MihIndex::build(128, random_dataset(200, 128, 3));
        let r = idx.memory_report();
        assert!(r.code_bytes >= 200 * 16, "flat rows: 2 words per code");
        assert!(r.structure_bytes > 0 && r.payload_bytes > 0);
        assert_eq!(idx.memory_bytes(), r.total());
    }

    #[test]
    fn empty_index_answers_empty() {
        let idx = MihIndex::new(64, 4);
        assert!(idx.is_empty());
        let q = BinaryCode::from_u64(1, 64);
        assert!(idx.search(&q, 64).is_empty());
        assert!(idx.batch_search(&[q], 3)[0].is_empty());
    }
}
