//! Hamming-select and Hamming-join (Definitions 1 & 2) over any index.
//!
//! The centralized Hamming-join of §5's opening: build an index on the
//! smaller input, probe it with every tuple of the other. The quadratic
//! nested-loop join is kept as the baseline whose cost Definition 2's
//! discussion calls out (`O(mn)` reads and distance computations).

use ha_bitcode::BinaryCode;

use crate::{HammingIndex, TupleId};

/// Hamming-select (Definition 1): ids of tuples within distance `h` of
/// `query`, sorted for deterministic output.
///
/// ```
/// use ha_bitcode::BinaryCode;
/// use ha_core::select::hamming_select;
/// use ha_core::DynamicHaIndex;
///
/// let index = DynamicHaIndex::build(
///     (0..16u64).map(|i| (BinaryCode::from_u64(i, 8), i)));
/// let hits = hamming_select(&index, &BinaryCode::from_u64(0, 8), 1);
/// assert_eq!(hits, vec![0, 1, 2, 4, 8]); // 0 and its four 1-bit flips
/// ```
pub fn hamming_select<I: HammingIndex + ?Sized>(
    index: &I,
    query: &BinaryCode,
    h: u32,
) -> Vec<TupleId> {
    let mut out = index.search(query, h);
    out.sort_unstable();
    out
}

/// Index-accelerated Hamming-join (Definition 2): all `(probe_id, index_id)`
/// pairs within distance `h`, where `index` was built over one input and
/// `probe` is the other. Pairs are sorted.
///
/// Note the symmetry remark of Definition 2 (footnote 1): h-join(R, S) =
/// h-join(S, R) up to pair orientation, so index the smaller side.
///
/// ```
/// use ha_bitcode::BinaryCode;
/// use ha_core::select::hamming_join;
/// use ha_core::DynamicHaIndex;
///
/// // Index S, probe with R (ids offset so the sides are tellable apart).
/// let s = DynamicHaIndex::build(
///     (0..8u64).map(|i| (BinaryCode::from_u64(i, 8), 100 + i)));
/// let r: Vec<(BinaryCode, u64)> =
///     vec![(BinaryCode::from_u64(0, 8), 0), (BinaryCode::from_u64(7, 8), 1)];
///
/// let pairs = hamming_join(&s, &r, 1);
/// assert_eq!(pairs, vec![
///     (0, 100), (0, 101), (0, 102), (0, 104), // r0 ↔ {0,1,2,4}
///     (1, 103), (1, 105), (1, 106), (1, 107), // r7 ↔ {3,5,6,7}
/// ]);
/// ```
pub fn hamming_join<I: HammingIndex + ?Sized>(
    index: &I,
    probe: &[(BinaryCode, TupleId)],
    h: u32,
) -> Vec<(TupleId, TupleId)> {
    let mut out = Vec::new();
    for (code, pid) in probe {
        for sid in index.search(code, h) {
            out.push((*pid, sid));
        }
    }
    out.sort_unstable();
    out
}

/// The quadratic nested-loop join: `O(|r| · |s|)` distance computations.
pub fn nested_loop_join(
    r: &[(BinaryCode, TupleId)],
    s: &[(BinaryCode, TupleId)],
    h: u32,
) -> Vec<(TupleId, TupleId)> {
    let mut out = Vec::new();
    for (rc, rid) in r {
        for (sc, sid) in s {
            if rc.hamming_within(sc, h).is_some() {
                out.push((*rid, *sid));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Similarity-aware intersection (the paper's concluding future-work item,
/// its reference \[27\]): the tuples of `probe` that have **at least one**
/// partner within distance `h` in the indexed dataset. Unlike the join it
/// returns each qualifying probe id once, with its closest match distance.
pub fn hamming_intersect<I: HammingIndex + ?Sized>(
    index: &I,
    probe: &[(BinaryCode, TupleId)],
    h: u32,
) -> Vec<(TupleId, u32)> {
    let mut out = Vec::new();
    for (code, pid) in probe {
        // The index gives the candidate set; one pass finds the min
        // distance (the searches are already threshold-pruned).
        let hits = index.search(code, h);
        if hits.is_empty() {
            continue;
        }
        // Exact closest distance needs the partner codes, which the index
        // abstracts away; re-probing with shrinking h costs O(log h)
        // searches and keeps this operator index-agnostic.
        let mut lo = 0u32;
        let mut hi = h;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if index.search(code, mid).is_empty() {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        out.push((*pid, lo));
    }
    out.sort_unstable();
    out
}

/// Self-join: all unordered pairs `(i, j)`, `i < j`, within distance `h`
/// (the Self-Hamming-join workload of §6.2).
pub fn self_join<I: HammingIndex + ?Sized>(
    index: &I,
    data: &[(BinaryCode, TupleId)],
    h: u32,
) -> Vec<(TupleId, TupleId)> {
    let mut out = Vec::new();
    for (code, pid) in data {
        for sid in index.search(code, h) {
            if *pid < sid {
                out.push((*pid, sid));
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{oracle_join, paper_table_r, paper_table_s, random_dataset};
    use crate::{DynamicHaIndex, LinearScanIndex, RadixTreeIndex, StaticHaIndex};

    #[test]
    fn paper_example_1_join() {
        // h-join(R, S) at h = 3 from Example 1.
        let r = paper_table_r();
        let s = paper_table_s();
        let idx = DynamicHaIndex::build(s.clone());
        let got = hamming_join(&idx, &r, 3);
        let want = vec![
            (0, 0), (0, 3), (0, 4), (0, 6),
            (1, 0), (1, 3), (1, 4), (1, 6),
            (2, 3),
        ];
        assert_eq!(got, want);
        assert_eq!(nested_loop_join(&r, &s, 3), want);
    }

    #[test]
    fn join_is_symmetric() {
        let r = random_dataset(40, 24, 1);
        let s = random_dataset(60, 24, 2);
        let via_s = hamming_join(&DynamicHaIndex::build(s.clone()), &r, 4);
        let via_r: Vec<(TupleId, TupleId)> = {
            let mut v: Vec<_> = hamming_join(&DynamicHaIndex::build(r.clone()), &s, 4)
                .into_iter()
                .map(|(a, b)| (b, a))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(via_s, via_r);
    }

    #[test]
    fn all_indexes_produce_identical_joins() {
        let r = random_dataset(30, 32, 3);
        let s = random_dataset(80, 32, 4);
        let want = oracle_join(&r, &s, 3);
        assert_eq!(hamming_join(&LinearScanIndex::build(s.clone()), &r, 3), want);
        assert_eq!(hamming_join(&RadixTreeIndex::build(s.clone()), &r, 3), want);
        assert_eq!(hamming_join(&StaticHaIndex::build(s.clone()), &r, 3), want);
        assert_eq!(hamming_join(&DynamicHaIndex::build(s.clone()), &r, 3), want);
        assert_eq!(
            hamming_join(&crate::MultiHashTable::build(s.clone(), 4), &r, 3),
            want
        );
        assert_eq!(hamming_join(&crate::HEngine::build(s.clone(), 2), &r, 3), want);
        assert_eq!(hamming_join(&crate::HmSearch::build(s, 2), &r, 3), want);
    }

    #[test]
    fn self_join_excludes_self_and_mirrors() {
        let data = random_dataset(50, 16, 5);
        let idx = DynamicHaIndex::build(data.clone());
        let pairs = self_join(&idx, &data, 3);
        for (a, b) in &pairs {
            assert!(a < b, "({a},{b}) must be ordered");
        }
        // Against the oracle restricted to i < j.
        let want: Vec<(TupleId, TupleId)> = oracle_join(&data, &data, 3)
            .into_iter()
            .filter(|(a, b)| a < b)
            .collect();
        assert_eq!(pairs, want);
    }

    #[test]
    fn intersect_reports_each_probe_once_with_min_distance() {
        let s = paper_table_s();
        let r = paper_table_r();
        let idx = DynamicHaIndex::build(s.clone());
        let got = hamming_intersect(&idx, &r, 3);
        // Oracle: min distance per probe, filtered by <= 3.
        let want: Vec<(TupleId, u32)> = r
            .iter()
            .filter_map(|(rc, rid)| {
                let min = s.iter().map(|(sc, _)| rc.hamming(sc)).min().unwrap();
                (min <= 3).then_some((*rid, min))
            })
            .collect();
        assert_eq!(got, want);
        // r0 matches t6 exactly? r0 = 101100010 vs t6 = 101101010 → d = 2?
        // The oracle above is authoritative; just check shape.
        for (_, d) in &got {
            assert!(*d <= 3);
        }
    }

    #[test]
    fn intersect_empty_when_nothing_close() {
        let s = paper_table_s();
        let idx = DynamicHaIndex::build(s);
        let far: Vec<(BinaryCode, TupleId)> =
            vec![("010110101".parse().unwrap(), 9)];
        // Oracle check first: is anything within 1 of this probe?
        assert!(hamming_intersect(&idx, &far, 0).is_empty());
    }

    #[test]
    fn intersect_min_distance_binary_search_exact() {
        let data = random_dataset(200, 32, 91);
        let idx = DynamicHaIndex::build(data.clone());
        let probes = random_dataset(20, 32, 92);
        for h in [4u32, 8, 16] {
            let got = hamming_intersect(&idx, &probes, h);
            for (pid, d) in got {
                let (pc, _) = &probes[pid as usize];
                let true_min = data.iter().map(|(c, _)| c.hamming(pc)).min().unwrap();
                assert_eq!(d, true_min, "probe {pid}");
                assert!(true_min <= h);
            }
        }
    }

    #[test]
    fn hamming_select_sorted_output() {
        let s = paper_table_s();
        let idx = DynamicHaIndex::build(s);
        let q: BinaryCode = "101100010".parse().unwrap();
        assert_eq!(hamming_select(&idx, &q, 3), vec![0, 3, 4, 6]);
    }
}
