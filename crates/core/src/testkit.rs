//! Test and benchmark utilities: reference datasets and the linear-scan
//! oracle that every index implementation is validated against.
//!
//! Public (not `cfg(test)`) because the integration tests, property tests,
//! examples and the bench harness all use the same helpers.

use ha_bitcode::BinaryCode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::TupleId;

/// The paper's running example, Table 2a (dataset S).
pub fn paper_table_s() -> Vec<(BinaryCode, TupleId)> {
    [
        "001001010", "001011101", "011001100", "101001010", "101110110",
        "101011101", "101101010", "111001100",
    ]
    .iter()
    .enumerate()
    .map(|(i, s)| (s.parse().unwrap(), i as TupleId))
    .collect()
}

/// The paper's running example, Table 2b (dataset R).
pub fn paper_table_r() -> Vec<(BinaryCode, TupleId)> {
    ["101100010", "101010010", "110000010"]
        .iter()
        .enumerate()
        .map(|(i, s)| (s.parse().unwrap(), i as TupleId))
        .collect()
}

/// `n` uniformly random codes of `code_len` bits with ids `0..n`.
pub fn random_dataset(n: usize, code_len: usize, seed: u64) -> Vec<(BinaryCode, TupleId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| (BinaryCode::random(code_len, &mut rng), i as TupleId))
        .collect()
}

/// Clustered codes: `clusters` random centres, each point is a centre with
/// `flip_bits` random bits flipped. This mimics hashed real data, where
/// codes concentrate near cluster representatives — the regime the
/// HA-Index's pattern sharing exploits.
pub fn clustered_dataset(
    n: usize,
    code_len: usize,
    clusters: usize,
    flip_bits: usize,
    seed: u64,
) -> Vec<(BinaryCode, TupleId)> {
    assert!(clusters >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let centres: Vec<BinaryCode> = (0..clusters)
        .map(|_| BinaryCode::random(code_len, &mut rng))
        .collect();
    (0..n)
        .map(|i| {
            let mut c = centres[rng.gen_range(0..clusters)].clone();
            for _ in 0..flip_bits {
                c.flip(rng.gen_range(0..code_len));
            }
            (c, i as TupleId)
        })
        .collect()
}

/// The ground-truth Hamming-select: ids of codes within distance `h` of
/// `query`, sorted. Every index's `search` must equal this (within its
/// completeness guarantee).
pub fn oracle_select(
    data: &[(BinaryCode, TupleId)],
    query: &BinaryCode,
    h: u32,
) -> Vec<TupleId> {
    let mut out: Vec<TupleId> = data
        .iter()
        .filter(|(c, _)| c.hamming(query) <= h)
        .map(|&(_, id)| id)
        .collect();
    out.sort_unstable();
    out
}

/// The ground-truth Hamming-join: all `(r_id, s_id)` pairs within distance
/// `h`, sorted.
pub fn oracle_join(
    r: &[(BinaryCode, TupleId)],
    s: &[(BinaryCode, TupleId)],
    h: u32,
) -> Vec<(TupleId, TupleId)> {
    let mut out = Vec::new();
    for (rc, rid) in r {
        for (sc, sid) in s {
            if rc.hamming(sc) <= h {
                out.push((*rid, *sid));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Asserts that `got` (any order, possibly with duplicates removed by the
/// caller) equals the oracle set; panics with a readable diff otherwise.
pub fn assert_matches_oracle(
    mut got: Vec<TupleId>,
    data: &[(BinaryCode, TupleId)],
    query: &BinaryCode,
    h: u32,
    context: &str,
) {
    got.sort_unstable();
    got.dedup();
    let want = oracle_select(data, query, h);
    assert_eq!(
        got, want,
        "{context}: select(q={query}, h={h}) mismatch"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_select_matches_paper_example() {
        let s = paper_table_s();
        let q: BinaryCode = "101100010".parse().unwrap();
        assert_eq!(oracle_select(&s, &q, 3), vec![0, 3, 4, 6]);
    }

    #[test]
    fn oracle_join_matches_paper_example() {
        // Example 1: join of Tables 2b and 2a at h = 3.
        let r = paper_table_r();
        let s = paper_table_s();
        let want: Vec<(TupleId, TupleId)> = vec![
            (0, 0), (0, 3), (0, 4), (0, 6),
            (1, 0), (1, 3), (1, 4), (1, 6),
            (2, 3),
        ];
        assert_eq!(oracle_join(&r, &s, 3), want);
    }

    #[test]
    fn clustered_dataset_is_clustered() {
        let data = clustered_dataset(200, 64, 4, 3, 1);
        assert_eq!(data.len(), 200);
        // Mean pairwise distance must sit well below the 32 expected for
        // uniform random codes.
        let mut sum = 0u64;
        let mut cnt = 0u64;
        for i in (0..200).step_by(5) {
            for j in (i + 1..200).step_by(7) {
                sum += u64::from(data[i].0.hamming(&data[j].0));
                cnt += 1;
            }
        }
        let mean = sum as f64 / cnt as f64;
        assert!(mean < 30.0, "mean pairwise distance {mean}");
    }

    #[test]
    fn random_dataset_deterministic_by_seed() {
        assert_eq!(random_dataset(10, 32, 5), random_dataset(10, 32, 5));
        assert_ne!(random_dataset(10, 32, 5), random_dataset(10, 32, 6));
    }
}
