//! Static HA-Index (§4.3): share fixed-length *segments* across codes.
//!
//! Codes are cut into fixed-width contiguous segments. Equal segment values
//! at the same offset become one shared vertex; each code is a path through
//! one vertex per level (Figure 2: t2 and t7 share N6 and N11, so the
//! distance of "001"/"100" to the query is computed once for both).
//!
//! Query evaluation makes that sharing explicit: per level, the masked
//! distance of each *distinct* vertex to the query is computed exactly once
//! (`O(distinct vertices)` XORs instead of `O(n)`); per code, the
//! precomputed per-vertex distances are summed with early exit — the
//! downward-closure prune of Proposition 1 applied level by level.
//!
//! The known weakness (§4.3, remedied by the Dynamic HA-Index): common bit
//! substrings that do not align to segment boundaries are invisible, and
//! FLSSeq (non-contiguous) sharing is impossible.

use std::collections::HashMap;

use ha_bitcode::segment::Segmentation;
use ha_bitcode::BinaryCode;

use crate::memory::{map_bytes, vec_bytes, MemoryReport};
use crate::{HammingIndex, MutableIndex, TupleId};

/// One level of the segment graph: the distinct segment values at one
/// offset, plus an interning map used during build/maintenance.
#[derive(Clone, Debug)]
struct Level {
    /// Distinct segment values; a "vertex" is an index into this array.
    values: Vec<u64>,
    /// Tuples passing through each vertex (for maintenance GC).
    refcount: Vec<u32>,
    /// value → vertex index.
    intern: HashMap<u64, u32>,
}

impl Level {
    fn new() -> Self {
        Level {
            values: Vec::new(),
            refcount: Vec::new(),
            intern: HashMap::new(),
        }
    }

    fn intern(&mut self, value: u64) -> u32 {
        match self.intern.entry(value) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let idx = *e.get();
                self.refcount[idx as usize] += 1;
                idx
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let idx = self.values.len() as u32;
                self.values.push(value);
                self.refcount.push(1);
                e.insert(idx);
                idx
            }
        }
    }
}

/// A distinct code: its path through the levels plus the tuple ids bearing
/// that code.
#[derive(Clone, Debug)]
struct PathEntry {
    vertices: Vec<u32>, // one per level
    ids: Vec<TupleId>,
}

/// The Static HA-Index.
#[derive(Clone, Debug)]
pub struct StaticHaIndex {
    code_len: usize,
    seg: Segmentation,
    levels: Vec<Level>,
    paths: Vec<PathEntry>,
    /// full code → path index (distinct codes are stored once).
    code_to_path: HashMap<BinaryCode, u32>,
    len: usize,
}

/// Default segment width when none is given: √L rounded to a byte-ish
/// size — the paper's example uses 3-bit segments on 9-bit codes; for the
/// evaluated 32/64-bit codes, 8-bit segments are the natural choice.
fn default_width(code_len: usize) -> usize {
    ((code_len as f64).sqrt().round() as usize).clamp(2, 16).min(code_len)
}

impl StaticHaIndex {
    /// Empty index with an explicit segment width.
    pub fn with_segment_width(code_len: usize, width: usize) -> Self {
        let seg = Segmentation::with_width(code_len, width);
        StaticHaIndex {
            code_len,
            levels: (0..seg.count()).map(|_| Level::new()).collect(),
            seg,
            paths: Vec::new(),
            code_to_path: HashMap::new(),
            len: 0,
        }
    }

    /// Empty index with the default segment width (≈ √L bits).
    pub fn new(code_len: usize) -> Self {
        Self::with_segment_width(code_len, default_width(code_len))
    }

    /// Builds from `(code, id)` pairs with the default width.
    ///
    /// ```
    /// use ha_bitcode::BinaryCode;
    /// use ha_core::{HammingIndex, StaticHaIndex};
    ///
    /// let index = StaticHaIndex::build(
    ///     (0..32u64).map(|i| (BinaryCode::from_u64(i, 16), i)));
    /// let mut hits = index.search(&BinaryCode::from_u64(3, 16), 1);
    /// hits.sort_unstable();
    /// assert_eq!(hits, vec![1, 2, 3, 7, 11, 19]); // 3 and its 1-bit flips
    /// ```
    pub fn build(items: impl IntoIterator<Item = (BinaryCode, TupleId)>) -> Self {
        let mut iter = items.into_iter().peekable();
        let code_len = iter
            .peek()
            .map(|(c, _)| c.len())
            .expect("StaticHaIndex::build needs at least one item");
        let mut idx = Self::new(code_len);
        for (code, id) in iter {
            idx.insert(code, id);
        }
        idx
    }

    /// Builds with an explicit segment width (the ablation knob).
    pub fn build_with_width(
        items: impl IntoIterator<Item = (BinaryCode, TupleId)>,
        width: usize,
    ) -> Self {
        let mut iter = items.into_iter().peekable();
        let code_len = iter
            .peek()
            .map(|(c, _)| c.len())
            .expect("StaticHaIndex::build needs at least one item");
        let mut idx = Self::with_segment_width(code_len, width);
        for (code, id) in iter {
            idx.insert(code, id);
        }
        idx
    }

    /// The segment width in use.
    pub fn segment_width(&self) -> usize {
        self.seg.bounds(0).1
    }

    /// Number of distinct vertices across all levels — the sharing the
    /// structure achieves (|V| of §4.7).
    pub fn vertex_count(&self) -> usize {
        self.levels.iter().map(|l| l.values.len()).sum()
    }

    /// Itemized memory usage.
    pub fn memory_report(&self) -> MemoryReport {
        let structure: usize = self
            .levels
            .iter()
            .map(|l| vec_bytes(&l.values) + vec_bytes(&l.refcount) + map_bytes(&l.intern))
            .sum::<usize>()
            + vec_bytes(&self.paths)
            + self
                .paths
                .iter()
                .map(|p| vec_bytes(&p.vertices))
                .sum::<usize>();
        let code_heap: usize = self
            .code_to_path
            .keys()
            .map(|c| c.heap_bytes())
            .sum::<usize>()
            + map_bytes(&self.code_to_path);
        let payload: usize = self.paths.iter().map(|p| vec_bytes(&p.ids)).sum();
        MemoryReport {
            structure_bytes: structure,
            code_bytes: code_heap,
            payload_bytes: payload,
        }
    }
}

impl HammingIndex for StaticHaIndex {
    fn name(&self) -> &'static str {
        "SHA-Index"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn code_len(&self) -> usize {
        self.code_len
    }

    fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        assert_eq!(query.len(), self.code_len, "query length mismatch");
        // Phase 1 — the shared work: distance of every distinct vertex to
        // the query, once per vertex (not once per tuple).
        let dists: Vec<Vec<u32>> = self
            .levels
            .iter()
            .enumerate()
            .map(|(l, level)| {
                let q = self.seg.extract(query, l);
                level.values.iter().map(|&v| (q ^ v).count_ones()).collect()
            })
            .collect();
        // Phase 2 — per-path accumulation with early exit.
        let mut out = Vec::new();
        'paths: for path in &self.paths {
            let mut acc = 0u32;
            for (l, &v) in path.vertices.iter().enumerate() {
                acc += dists[l][v as usize];
                if acc > h {
                    continue 'paths;
                }
            }
            out.extend_from_slice(&path.ids);
        }
        out
    }

    fn memory_bytes(&self) -> usize {
        self.memory_report().total()
    }
}

impl MutableIndex for StaticHaIndex {
    fn insert(&mut self, code: BinaryCode, id: TupleId) {
        assert_eq!(code.len(), self.code_len, "code length mismatch");
        if let Some(&p) = self.code_to_path.get(&code) {
            self.paths[p as usize].ids.push(id);
            // Refcounts follow tuples, not distinct codes.
            for (l, &v) in self.paths[p as usize].vertices.iter().enumerate() {
                self.levels[l].refcount[v as usize] += 1;
            }
        } else {
            let vertices: Vec<u32> = (0..self.seg.count())
                .map(|l| {
                    let value = self.seg.extract(&code, l);
                    self.levels[l].intern(value)
                })
                .collect();
            let p = self.paths.len() as u32;
            self.paths.push(PathEntry {
                vertices,
                ids: vec![id],
            });
            self.code_to_path.insert(code, p);
        }
        self.len += 1;
    }

    fn delete(&mut self, code: &BinaryCode, id: TupleId) -> bool {
        let Some(&p) = self.code_to_path.get(code) else {
            return false;
        };
        let path = &mut self.paths[p as usize];
        let Some(pos) = path.ids.iter().position(|&x| x == id) else {
            return false;
        };
        path.ids.swap_remove(pos);
        let vertices = path.vertices.clone();
        let now_empty = path.ids.is_empty();
        for (l, &v) in vertices.iter().enumerate() {
            self.levels[l].refcount[v as usize] -= 1;
        }
        if now_empty {
            // Keep the vertex arrays intact (vertex indices are stable);
            // zero-ref vertices are skipped naturally because no path
            // references them. Remove the path from the code map; the
            // PathEntry slot stays but matches nothing.
            self.code_to_path.remove(code);
            self.paths[p as usize].vertices.clear();
        }
        self.len -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_matches_oracle, clustered_dataset, paper_table_s, random_dataset};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn paper_example_select() {
        let data = paper_table_s();
        let idx = StaticHaIndex::build_with_width(data.clone(), 3);
        let q: BinaryCode = "101100010".parse().unwrap();
        assert_matches_oracle(idx.search(&q, 3), &data, &q, 3, "sha");
    }

    #[test]
    fn paper_figure_2_vertex_sharing() {
        // With 3-bit segments over Table 2a, t2 = 011|001|100 and
        // t7 = 111|001|100 share the level-1 vertex "001" and the level-2
        // vertex "100"; the 8 codes produce far fewer than 24 vertices.
        let data = paper_table_s();
        let idx = StaticHaIndex::build_with_width(data.clone(), 3);
        assert!(idx.vertex_count() < 24, "vertices: {}", idx.vertex_count());
        // Level 1 has exactly the distinct middle segments:
        // {001, 011, 110, 101} → 4.
        assert_eq!(idx.levels[1].values.len(), 4);
        // Level 2: {010, 101, 100, 110} → 4.
        assert_eq!(idx.levels[2].values.len(), 4);
    }

    #[test]
    fn matches_oracle_on_random_data() {
        let data = random_dataset(300, 32, 13);
        let idx = StaticHaIndex::build(data.clone());
        let mut rng = StdRng::seed_from_u64(4);
        for h in [0, 1, 3, 6, 10, 32] {
            let q = BinaryCode::random(32, &mut rng);
            assert_matches_oracle(idx.search(&q, h), &data, &q, h, "sha");
        }
    }

    #[test]
    fn matches_oracle_on_clustered_data() {
        let data = clustered_dataset(400, 64, 6, 4, 17);
        let idx = StaticHaIndex::build(data.clone());
        let mut rng = StdRng::seed_from_u64(40);
        for h in [0, 2, 5, 9] {
            // Query near a cluster: take a data code and perturb it.
            let mut q = data[rng.gen_range(0..data.len())].0.clone();
            for _ in 0..3 {
                q.flip(rng.gen_range(0..64));
            }
            assert_matches_oracle(idx.search(&q, h), &data, &q, h, "sha-clustered");
        }
    }

    #[test]
    fn various_segment_widths_agree() {
        let data = random_dataset(150, 48, 23);
        let mut rng = StdRng::seed_from_u64(3);
        let q = BinaryCode::random(48, &mut rng);
        let reference = crate::testkit::oracle_select(&data, &q, 5);
        for width in [2, 3, 5, 8, 12, 16, 48] {
            let idx = StaticHaIndex::build_with_width(data.clone(), width.min(48));
            let mut got = idx.search(&q, 5);
            got.sort_unstable();
            assert_eq!(got, reference, "width {width}");
        }
    }

    #[test]
    fn clustered_data_shares_vertices() {
        // Clustered codes must intern far fewer vertices than tuples.
        let data = clustered_dataset(1000, 32, 5, 2, 7);
        let idx = StaticHaIndex::build_with_width(data, 8);
        assert!(
            idx.vertex_count() < 400,
            "expected heavy sharing, got {} vertices",
            idx.vertex_count()
        );
    }

    #[test]
    fn insert_delete_roundtrip() {
        let data = random_dataset(120, 32, 31);
        let mut idx = StaticHaIndex::build(data.clone());
        let (code, id) = data[7].clone();
        assert!(idx.delete(&code, id));
        assert!(!idx.delete(&code, id));
        assert!(!idx.search(&code, 0).contains(&id));
        idx.insert(code.clone(), id);
        assert!(idx.search(&code, 0).contains(&id));
        let mut rng = StdRng::seed_from_u64(8);
        let q = BinaryCode::random(32, &mut rng);
        assert_matches_oracle(idx.search(&q, 4), &data, &q, 4, "sha-after-update");
    }

    #[test]
    fn duplicate_codes_share_one_path() {
        let c: BinaryCode = "10101010".parse().unwrap();
        let mut idx = StaticHaIndex::with_segment_width(8, 4);
        idx.insert(c.clone(), 1);
        idx.insert(c.clone(), 2);
        assert_eq!(idx.paths.len(), 1, "one distinct code, one path");
        let mut got = idx.search(&c, 0);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(idx.delete(&c, 1));
        assert_eq!(idx.search(&c, 0), vec![2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_sha_equals_oracle(seed in any::<u64>(), h in 0u32..12, width in 2usize..12) {
            let data = random_dataset(100, 30, seed);
            let idx = StaticHaIndex::build_with_width(data.clone(), width);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5555);
            let q = BinaryCode::random(30, &mut rng);
            assert_matches_oracle(idx.search(&q, h), &data, &q, h, "sha-prop");
        }
    }
}
