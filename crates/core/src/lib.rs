//! # ha-core — Hamming-distance range-query indexes
//!
//! The paper's primary contribution and all of its centralized competitors,
//! behind one trait:
//!
//! | type | paper name | § |
//! |---|---|---|
//! | [`LinearScanIndex`] | Nested-Loops | 3.1 |
//! | [`RadixTreeIndex`] | Radix-Tree / PATRICIA | 4.2 |
//! | [`StaticHaIndex`] | Static HA-Index | 4.3 |
//! | [`DynamicHaIndex`] | Dynamic HA-Index (H-Build/H-Search/…) | 4.4–4.6 |
//! | [`MultiHashTable`] | Manku et al. (MH-4 / MH-10) | 2 |
//! | [`HEngine`] | HEngine-style segment tables | 2 |
//! | [`HmSearch`] | HmSearch signature index | 2 |
//! | [`MihIndex`] | Multi-Index Hashing (Norouzi et al.) | 2 |
//! | [`planner::PlannedIndex`] | adaptive backend routing | — |
//!
//! Every index answers the **Hamming-select** of Definition 1 through
//! [`HammingIndex::search`]; [`select`] adds the **Hamming-join**
//! (Definition 2) built on top of any index, plus the nested-loop join used
//! as the quadratic baseline.
//!
//! ## Correctness contract
//!
//! `search(q, h)` must return *exactly* the ids of indexed codes `U` with
//! `hamming(q, U) <= h` — the same set a linear scan produces — provided
//! `h` is within the structure's completeness guarantee
//! ([`HammingIndex::complete_up_to`]). The HA-Index and Radix-Tree are
//! complete for every `h`; the segment-pigeonhole schemes (MH, HEngine,
//! HmSearch) are complete only below a threshold fixed at construction,
//! which is the sensitivity the paper criticises them for.

pub mod delta;
pub mod dynamic;
pub mod exec;
pub mod mapped;
mod hengine;
mod hmsearch;
mod linear;
mod memory;
mod mih;
mod multihash;
pub mod planner;
mod radix;
pub mod select;
mod static_ha;
pub mod testkit;

pub use delta::{DeltaBase, DeltaIndex, DeltaOp};
pub use exec::{ExecConfig, SearchExecutor};
pub use mapped::MappedIndex;
pub use dynamic::{DhaConfig, DynamicHaIndex, FlatHaIndex, FreezePolicy};
pub use hengine::HEngine;
pub use hmsearch::HmSearch;
pub use linear::LinearScanIndex;
pub use memory::MemoryReport;
pub use mih::MihIndex;
pub use multihash::MultiHashTable;
pub use planner::{Backend, CostModel, PlannedIndex};
pub use radix::RadixTreeIndex;
pub use static_ha::StaticHaIndex;

use ha_bitcode::BinaryCode;

/// Identifier of an indexed tuple. The index stores ids, not payloads;
/// callers keep the id → tuple mapping (in MapReduce runs the post-join of
/// Option B resolves ids via a hash-join).
pub type TupleId = u64;

/// A Hamming-distance range-query index over binary codes
/// (Definition 1: Hamming-select).
pub trait HammingIndex {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Number of indexed tuples (with multiplicity).
    fn len(&self) -> usize;

    /// True if nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length in bits of the indexed codes.
    fn code_len(&self) -> usize;

    /// All ids whose code is within Hamming distance `h` of `query`
    /// (order unspecified).
    ///
    /// # Panics
    /// If `query.len() != self.code_len()`.
    fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId>;

    /// Largest threshold for which `search` is guaranteed complete;
    /// `None` means complete for every `h`.
    fn complete_up_to(&self) -> Option<u32> {
        None
    }

    /// Bytes of memory attributable to the index structure (the space
    /// column of Table 4).
    fn memory_bytes(&self) -> usize;
}

/// An index supporting online maintenance (the update column of Table 4:
/// "delete one tuple, then insert the same tuple back").
///
/// ```
/// use ha_core::{DynamicHaIndex, HammingIndex, MutableIndex};
/// use ha_bitcode::BinaryCode;
///
/// let mut index = DynamicHaIndex::build(
///     (0..16u64).map(|i| (BinaryCode::from_u64(i, 8), i)));
/// let five = BinaryCode::from_u64(5, 8);
///
/// assert!(index.delete(&five, 5));          // H-Delete…
/// assert!(!index.search(&five, 0).contains(&5));
/// index.insert(five.clone(), 5);            // …then H-Insert restores it
/// assert_eq!(index.search(&five, 0), vec![5]);
/// ```
pub trait MutableIndex: HammingIndex {
    /// Adds a `(code, id)` pair.
    fn insert(&mut self, code: BinaryCode, id: TupleId);

    /// Removes one `(code, id)` pair; returns whether it was present.
    fn delete(&mut self, code: &BinaryCode, id: TupleId) -> bool;
}
