//! Delta overlay for generational serving: a small mutable batch of
//! H-Inserts / H-Deletes searched **alongside** a frozen base
//! [`PlannedIndex`], so mutations never touch (or re-freeze) the base.
//!
//! This is the paper's §5 dynamic maintenance recast as LSM-style
//! compaction: the base is an immutable generation, the [`DeltaIndex`]
//! absorbs the stream, and a background merge periodically materializes
//! `base ⊎ delta` into the next generation. Three views make that safe:
//!
//! * **adds** — `(code, id)` pairs inserted since the generation was
//!   built, scanned linearly at query time (the delta is bounded by the
//!   merge trigger, so the scan is O(delta), not O(n));
//! * **dels** — a multiset of tombstoned *base* pairs at exact
//!   `(code, id)` granularity; a query near a tombstone re-reads the
//!   affected leaf id lists through
//!   [`DynamicHaIndex::ids_for_code`](crate::DynamicHaIndex::ids_for_code)
//!   and subtracts;
//! * **ops** — the ordered, sequence-stamped log of everything applied,
//!   which lets a publish [`rebase`](DeltaIndex::rebase) the un-absorbed
//!   suffix onto the freshly built generation.
//!
//! The composed read (`base` minus `dels` plus `adds`) returns, as a
//! multiset, exactly what a linear scan over the live pairs returns —
//! the equivalence `tests/serve_generations.rs` pins against a lockstep
//! oracle. Because a merge is *content-preserving* (`materialize` +
//! `rebase` change representation, never the live pair multiset), the
//! serving layer's mutation epoch does not move when a generation is
//! swapped in — which is what keeps epoch-tagged result caching exact
//! across generation boundaries.

use std::collections::HashMap;

use ha_bitcode::BinaryCode;

use crate::mapped::MappedIndex;
use crate::planner::PlannedIndex;
use crate::{HammingIndex, TupleId};

/// A frozen generation a [`DeltaIndex`] can overlay. Two shapes qualify:
/// a fully planned in-memory generation ([`PlannedIndex`]) and a
/// zero-copy mapped snapshot ([`MappedIndex`]) — the crash-recovery
/// bridge that serves before any rebuild has run. The contract the
/// overlay relies on:
///
/// * `search` / `batch_search` return ids sorted ascending;
///   `search_with_distances` sorts by `(id, distance)` — the canonical
///   planned orders, so swapping base shapes never reorders answers;
/// * `ids_for_code` returns the *exact-code* id multiset (tombstone
///   subtraction is per `(code, id)` pair);
/// * `items_vec` materializes the live multiset (next merge's H-Build
///   input).
pub trait DeltaBase {
    /// Number of indexed tuples (with multiplicity).
    fn len(&self) -> usize;
    /// True if nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Width of the indexed codes in bits.
    fn code_len(&self) -> usize;
    /// Hamming-select, ids sorted ascending.
    fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId>;
    /// Batched Hamming-select, each answer sorted ascending.
    fn batch_search(&self, queries: &[BinaryCode], h: u32) -> Vec<Vec<TupleId>>;
    /// Hamming-select with exact distances, sorted by `(id, distance)`.
    fn search_with_distances(&self, query: &BinaryCode, h: u32) -> Vec<(TupleId, u32)>;
    /// Distinct qualifying codes with exact distances (order free).
    fn search_codes(&self, query: &BinaryCode, h: u32) -> Vec<(BinaryCode, u32)>;
    /// Ids stored at exactly `code`, with multiplicity.
    fn ids_for_code(&self, code: &BinaryCode) -> Vec<TupleId>;
    /// Every indexed `(code, id)` pair, materialized.
    fn items_vec(&self) -> Vec<(BinaryCode, TupleId)>;
}

impl DeltaBase for PlannedIndex {
    fn len(&self) -> usize {
        HammingIndex::len(self)
    }
    fn code_len(&self) -> usize {
        HammingIndex::code_len(self)
    }
    fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        HammingIndex::search(self, query, h)
    }
    fn batch_search(&self, queries: &[BinaryCode], h: u32) -> Vec<Vec<TupleId>> {
        PlannedIndex::batch_search(self, queries, h)
    }
    fn search_with_distances(&self, query: &BinaryCode, h: u32) -> Vec<(TupleId, u32)> {
        PlannedIndex::search_with_distances(self, query, h)
    }
    fn search_codes(&self, query: &BinaryCode, h: u32) -> Vec<(BinaryCode, u32)> {
        self.dha().search_codes(query, h)
    }
    fn ids_for_code(&self, code: &BinaryCode) -> Vec<TupleId> {
        self.dha().ids_for_code(code)
    }
    fn items_vec(&self) -> Vec<(BinaryCode, TupleId)> {
        self.items().collect()
    }
}

impl DeltaBase for MappedIndex {
    fn len(&self) -> usize {
        MappedIndex::len(self)
    }
    fn code_len(&self) -> usize {
        MappedIndex::code_len(self)
    }
    fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        MappedIndex::search(self, query, h)
    }
    fn batch_search(&self, queries: &[BinaryCode], h: u32) -> Vec<Vec<TupleId>> {
        MappedIndex::batch_search(self, queries, h)
    }
    fn search_with_distances(&self, query: &BinaryCode, h: u32) -> Vec<(TupleId, u32)> {
        MappedIndex::search_with_distances(self, query, h)
    }
    fn search_codes(&self, query: &BinaryCode, h: u32) -> Vec<(BinaryCode, u32)> {
        MappedIndex::search_codes(self, query, h)
    }
    fn ids_for_code(&self, code: &BinaryCode) -> Vec<TupleId> {
        MappedIndex::ids_for_code(self, code).to_vec()
    }
    fn items_vec(&self) -> Vec<(BinaryCode, TupleId)> {
        MappedIndex::items_vec(self)
    }
}

/// One streamed mutation, as recorded in the delta's op log (and, on the
/// durable serving path, in the write-ahead log).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// H-Insert of a `(code, id)` pair.
    Insert(BinaryCode, TupleId),
    /// H-Delete of one `(code, id)` pair.
    Delete(BinaryCode, TupleId),
}

/// The mutable overlay of one generational shard. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct DeltaIndex {
    /// Ordered `(seq, op)` log of every applied mutation (no-op deletes
    /// are not recorded — they change nothing to re-apply).
    ops: Vec<(u64, DeltaOp)>,
    /// Pairs inserted since the base generation was built.
    adds: Vec<(BinaryCode, TupleId)>,
    /// Tombstone multiset over *base* pairs: `(code, id) → copies
    /// deleted`. Never exceeds the base's multiplicity for that pair.
    dels: HashMap<(BinaryCode, TupleId), u32>,
}

impl DeltaIndex {
    /// An empty delta.
    pub fn new() -> Self {
        DeltaIndex::default()
    }

    /// Applies one sequence-stamped mutation against `base ⊎ self`.
    /// Returns whether the live multiset changed: inserts always mutate;
    /// a delete of a pair that is not live is a no-op reported as
    /// `false` (and left out of the op log).
    pub fn apply<B: DeltaBase>(&mut self, base: &B, seq: u64, op: DeltaOp) -> bool {
        match op {
            DeltaOp::Insert(code, id) => {
                self.adds.push((code.clone(), id));
                self.ops.push((seq, DeltaOp::Insert(code, id)));
                true
            }
            DeltaOp::Delete(code, id) => {
                if let Some(pos) = self
                    .adds
                    .iter()
                    .rposition(|(c, i)| *i == id && c == &code)
                {
                    self.adds.swap_remove(pos);
                    self.ops.push((seq, DeltaOp::Delete(code, id)));
                    return true;
                }
                let key = (code, id);
                let tombstoned = self.dels.get(&key).copied().unwrap_or(0);
                let base_mult = base
                    .ids_for_code(&key.0)
                    .iter()
                    .filter(|&&x| x == id)
                    .count() as u32;
                if base_mult > tombstoned {
                    let (code, id) = key.clone();
                    self.dels.insert(key, tombstoned + 1);
                    self.ops.push((seq, DeltaOp::Delete(code, id)));
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Number of mutations applied (the merge-trigger gauge).
    pub fn ops_len(&self) -> usize {
        self.ops.len()
    }

    /// Sequence number of the last applied mutation (0 when none) — the
    /// watermark a merge captures so the publish step knows which suffix
    /// to [`rebase`](DeltaIndex::rebase).
    pub fn last_seq(&self) -> u64 {
        self.ops.last().map_or(0, |&(seq, _)| seq)
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Live pair count of `base ⊎ self`.
    pub fn live_len<B: DeltaBase>(&self, base: &B) -> usize {
        let tombstoned: u32 = self.dels.values().sum();
        base.len() + self.adds.len() - tombstoned as usize
    }

    /// True when some tombstoned code lies within distance `h` of
    /// `query` — the predicate that forces the tombstone-aware read path.
    fn tombstone_near(&self, query: &BinaryCode, h: u32) -> bool {
        self.dels.keys().any(|(c, _)| c.hamming(query) <= h)
    }

    /// Ids at exactly `code` in the base, with tombstoned copies
    /// subtracted per `(code, id)` pair.
    fn base_ids_surviving<B: DeltaBase>(&self, base: &B, code: &BinaryCode, out: &mut Vec<TupleId>) {
        let mut counts: HashMap<TupleId, u32> = HashMap::new();
        for id in base.ids_for_code(code) {
            *counts.entry(id).or_insert(0) += 1;
        }
        for (id, copies) in counts {
            let t = self
                .dels
                .get(&(code.clone(), id))
                .copied()
                .unwrap_or(0);
            for _ in t..copies {
                out.push(id);
            }
        }
    }

    /// Composed Hamming-select over `base ⊎ self`: every live id within
    /// distance `h` of `query` (with multiplicity), sorted ascending.
    pub fn search<B: DeltaBase>(&self, base: &B, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        let mut out = if self.tombstone_near(query, h) {
            let mut v = Vec::new();
            for (code, _) in base.search_codes(query, h) {
                self.base_ids_surviving(base, &code, &mut v);
            }
            v
        } else {
            base.search(query, h)
        };
        out.extend(
            self.adds
                .iter()
                .filter(|(c, _)| c.hamming(query) <= h)
                .map(|&(_, id)| id),
        );
        out.sort_unstable();
        out
    }

    /// Composed batched select: one shared-frontier base traversal for
    /// the whole batch, with the tombstone-aware path taken only for the
    /// queries that actually have a tombstone in range.
    pub fn batch_search<B: DeltaBase>(
        &self,
        base: &B,
        queries: &[BinaryCode],
        h: u32,
    ) -> Vec<Vec<TupleId>> {
        let mut answers = base.batch_search(queries, h);
        for (q, ids) in queries.iter().zip(answers.iter_mut()) {
            if self.tombstone_near(q, h) {
                ids.clear();
                for (code, _) in base.search_codes(q, h) {
                    self.base_ids_surviving(base, &code, ids);
                }
            }
            ids.extend(
                self.adds
                    .iter()
                    .filter(|(c, _)| c.hamming(q) <= h)
                    .map(|&(_, id)| id),
            );
            ids.sort_unstable();
        }
        answers
    }

    /// Composed select with exact distances, sorted by `(id, distance)`
    /// (the canonical [`PlannedIndex::search_with_distances`] order).
    pub fn search_with_distances<B: DeltaBase>(
        &self,
        base: &B,
        query: &BinaryCode,
        h: u32,
    ) -> Vec<(TupleId, u32)> {
        let mut out: Vec<(TupleId, u32)> = if self.tombstone_near(query, h) {
            let mut v = Vec::new();
            for (code, d) in base.search_codes(query, h) {
                let mut ids = Vec::new();
                self.base_ids_surviving(base, &code, &mut ids);
                v.extend(ids.into_iter().map(|id| (id, d)));
            }
            v
        } else {
            base.search_with_distances(query, h)
        };
        out.extend(self.adds.iter().filter_map(|(c, id)| {
            let d = c.hamming(query);
            (d <= h).then_some((*id, d))
        }));
        out.sort_unstable_by_key(|&(id, d)| (id, d));
        out
    }

    /// Materializes `base ⊎ self` as a plain item list — the input of the
    /// next generation's H-Build. Content-preserving by construction:
    /// the returned multiset *is* the live multiset.
    pub fn materialize<B: DeltaBase>(&self, base: &B) -> Vec<(BinaryCode, TupleId)> {
        let mut remaining = self.dels.clone();
        let mut items: Vec<(BinaryCode, TupleId)> = Vec::with_capacity(self.live_len(base));
        for (code, id) in base.items_vec() {
            if let Some(t) = remaining.get_mut(&(code.clone(), id)) {
                if *t > 0 {
                    *t -= 1;
                    continue;
                }
            }
            items.push((code, id));
        }
        items.extend(self.adds.iter().cloned());
        items
    }

    /// Re-applies every op with `seq > after_seq` onto an empty delta
    /// against `new_base` — the publish step of a merge. The absorbed
    /// prefix (`seq <= after_seq`) is exactly what `new_base` already
    /// contains, so `new_base ⊎ rebased` equals `old_base ⊎ self`.
    pub fn rebase<B: DeltaBase>(&self, new_base: &B, after_seq: u64) -> DeltaIndex {
        let mut next = DeltaIndex::new();
        for (seq, op) in &self.ops {
            if *seq > after_seq {
                next.apply(new_base, *seq, op.clone());
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlannedIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn oracle(live: &[(BinaryCode, TupleId)], q: &BinaryCode, h: u32) -> Vec<TupleId> {
        let mut ids: Vec<TupleId> = live
            .iter()
            .filter(|(c, _)| c.hamming(q) <= h)
            .map(|&(_, id)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn composed_reads_match_lockstep_oracle() {
        const LEN: usize = 16;
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<(BinaryCode, TupleId)> = (0..120)
            .map(|i| (BinaryCode::random(LEN, &mut rng), i as TupleId))
            .collect();
        let base = PlannedIndex::build(LEN, data.clone());
        let mut delta = DeltaIndex::new();
        let mut live = data;
        let mut seq = 0u64;
        let mut next_id: TupleId = 10_000;

        for step in 0..200 {
            match rng.gen_range(0..10u32) {
                0..=5 => {
                    let mut q = live
                        .get(rng.gen_range(0..live.len().max(1)))
                        .map(|(c, _)| c.clone())
                        .unwrap_or_else(|| BinaryCode::random(LEN, &mut rng));
                    if rng.gen_bool(0.4) {
                        q.flip(rng.gen_range(0..LEN));
                    }
                    let h = rng.gen_range(0..5);
                    assert_eq!(delta.search(&base, &q, h), oracle(&live, &q, h), "step {step}");
                    let dists = delta.search_with_distances(&base, &q, h);
                    assert_eq!(
                        dists.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
                        oracle(&live, &q, h),
                        "distances step {step}"
                    );
                    assert!(dists.iter().all(|&(_, d)| d <= h));
                }
                6..=7 => {
                    let code = if rng.gen_bool(0.5) {
                        BinaryCode::random(LEN, &mut rng)
                    } else {
                        live[rng.gen_range(0..live.len())].0.clone()
                    };
                    seq += 1;
                    assert!(delta.apply(&base, seq, DeltaOp::Insert(code.clone(), next_id)));
                    live.push((code, next_id));
                    next_id += 1;
                }
                _ => {
                    let pos = rng.gen_range(0..live.len());
                    let (code, id) = live.swap_remove(pos);
                    seq += 1;
                    assert!(delta.apply(&base, seq, DeltaOp::Delete(code.clone(), id)));
                    assert!(
                        !delta.apply(&base, seq, DeltaOp::Delete(code, id)),
                        "double delete must be a no-op"
                    );
                }
            }
            assert_eq!(delta.live_len(&base), live.len(), "step {step}");
        }
        // Batched reads agree with solo reads.
        let queries: Vec<BinaryCode> = live.iter().take(6).map(|(c, _)| c.clone()).collect();
        for h in [0u32, 2, 4] {
            let batch = delta.batch_search(&base, &queries, h);
            for (q, got) in queries.iter().zip(batch) {
                assert_eq!(got, delta.search(&base, q, h), "batch ≡ solo h={h}");
            }
        }
    }

    #[test]
    fn materialize_then_rebase_preserves_content() {
        const LEN: usize = 12;
        let mut rng = StdRng::seed_from_u64(21);
        let data: Vec<(BinaryCode, TupleId)> = (0..80)
            .map(|i| (BinaryCode::random(LEN, &mut rng), i as TupleId))
            .collect();
        let base = PlannedIndex::build(LEN, data.clone());
        let mut delta = DeltaIndex::new();
        let mut live = data;
        for seq in 1..=40u64 {
            if rng.gen_bool(0.5) {
                let code = BinaryCode::random(LEN, &mut rng);
                delta.apply(&base, seq, DeltaOp::Insert(code.clone(), 1000 + seq));
                live.push((code, 1000 + seq));
            } else {
                let pos = rng.gen_range(0..live.len());
                let (code, id) = live.swap_remove(pos);
                assert!(delta.apply(&base, seq, DeltaOp::Delete(code, id)));
            }
        }
        // Merge point: absorb the first 25 ops into the next generation…
        let capture = delta.clone();
        let captured_seq = 25u64;
        let prefix = {
            let mut p = DeltaIndex::new();
            for (seq, op) in capture.ops.iter().filter(|&&(s, _)| s <= captured_seq) {
                p.apply(&base, *seq, op.clone());
            }
            p
        };
        let next_gen = PlannedIndex::build(LEN, prefix.materialize(&base));
        // …and rebase the suffix onto it.
        let rebased = delta.rebase(&next_gen, captured_seq);
        let mut want: Vec<(BinaryCode, TupleId)> = live.clone();
        want.sort();
        let mut got = rebased.materialize(&next_gen);
        got.sort();
        assert_eq!(got, want, "swap must be content-preserving");
        // Query equivalence across the boundary.
        for _ in 0..8 {
            let q = BinaryCode::random(LEN, &mut rng);
            for h in [0u32, 2, 4] {
                assert_eq!(
                    rebased.search(&next_gen, &q, h),
                    delta.search(&base, &q, h),
                    "reads identical across the generation swap"
                );
            }
        }
    }

    #[test]
    fn duplicate_pairs_are_tombstoned_one_copy_at_a_time() {
        const LEN: usize = 8;
        let code = BinaryCode::from_u64(5, LEN);
        let base = PlannedIndex::build(
            LEN,
            vec![(code.clone(), 1), (code.clone(), 1), (code.clone(), 2)],
        );
        let mut delta = DeltaIndex::new();
        assert_eq!(delta.search(&base, &code, 0), vec![1, 1, 2]);
        assert!(delta.apply(&base, 1, DeltaOp::Delete(code.clone(), 1)));
        assert_eq!(delta.search(&base, &code, 0), vec![1, 2]);
        assert!(delta.apply(&base, 2, DeltaOp::Delete(code.clone(), 1)));
        assert_eq!(delta.search(&base, &code, 0), vec![2]);
        assert!(!delta.apply(&base, 3, DeltaOp::Delete(code.clone(), 1)));
        assert_eq!(delta.live_len(&base), 1);
        // Deleting a delta add takes the add, not a tombstone.
        assert!(delta.apply(&base, 4, DeltaOp::Insert(code.clone(), 7)));
        assert!(delta.apply(&base, 5, DeltaOp::Delete(code.clone(), 7)));
        assert_eq!(delta.search(&base, &code, 0), vec![2]);
    }
}
