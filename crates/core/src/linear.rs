//! Nested-loop / linear-scan baseline (§3.1).
//!
//! XOR + popcount over every stored code. This is the oracle every other
//! index is tested against, and the "Nested-Loops" row of Table 4.

use ha_bitcode::BinaryCode;

use crate::memory::{vec_bytes, MemoryReport};
use crate::{HammingIndex, MutableIndex, TupleId};

/// Flat array of `(code, id)` pairs; `search` scans all of them.
#[derive(Clone, Debug, Default)]
pub struct LinearScanIndex {
    code_len: usize,
    rows: Vec<(BinaryCode, TupleId)>,
}

impl LinearScanIndex {
    /// Empty index; the code length is fixed by the first insertion.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from an iterator of `(code, id)` pairs.
    ///
    /// ```
    /// use ha_bitcode::BinaryCode;
    /// use ha_core::{HammingIndex, LinearScanIndex};
    ///
    /// // The oracle every other index is tested against: an O(n) scan.
    /// let oracle = LinearScanIndex::build(
    ///     (0..16u64).map(|i| (BinaryCode::from_u64(i, 8), i)));
    /// let mut hits = oracle.search(&BinaryCode::from_u64(0, 8), 1);
    /// hits.sort_unstable();
    /// assert_eq!(hits, vec![0, 1, 2, 4, 8]);
    /// ```
    pub fn build(items: impl IntoIterator<Item = (BinaryCode, TupleId)>) -> Self {
        let mut idx = Self::new();
        for (code, id) in items {
            idx.insert(code, id);
        }
        idx
    }

    /// Itemized memory usage.
    pub fn memory_report(&self) -> MemoryReport {
        let heap: usize = self.rows.iter().map(|(c, _)| c.heap_bytes()).sum();
        MemoryReport {
            structure_bytes: 0,
            code_bytes: vec_bytes(&self.rows) + heap,
            payload_bytes: 0,
        }
    }

    /// Iterates over stored `(code, id)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(BinaryCode, TupleId)> {
        self.rows.iter()
    }
}

impl HammingIndex for LinearScanIndex {
    fn name(&self) -> &'static str {
        "Nested-Loops"
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn code_len(&self) -> usize {
        self.code_len
    }

    fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        assert!(
            self.rows.is_empty() || query.len() == self.code_len,
            "query length {} != indexed code length {}",
            query.len(),
            self.code_len
        );
        self.rows
            .iter()
            .filter(|(c, _)| c.hamming_within(query, h).is_some())
            .map(|&(_, id)| id)
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        self.memory_report().total()
    }
}

impl MutableIndex for LinearScanIndex {
    fn insert(&mut self, code: BinaryCode, id: TupleId) {
        if self.rows.is_empty() {
            self.code_len = code.len();
        } else {
            assert_eq!(code.len(), self.code_len, "mixed code lengths");
        }
        self.rows.push((code, id));
    }

    fn delete(&mut self, code: &BinaryCode, id: TupleId) -> bool {
        if let Some(pos) = self
            .rows
            .iter()
            .position(|(c, i)| *i == id && c == code)
        {
            self.rows.swap_remove(pos);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_table_s() -> LinearScanIndex {
        let codes = [
            "001001010", "001011101", "011001100", "101001010", "101110110",
            "101011101", "101101010", "111001100",
        ];
        LinearScanIndex::build(
            codes
                .iter()
                .enumerate()
                .map(|(i, s)| (s.parse().unwrap(), i as TupleId)),
        )
    }

    #[test]
    fn paper_example_1_select() {
        let idx = paper_table_s();
        let q: BinaryCode = "101100010".parse().unwrap();
        let mut hits = idx.search(&q, 3);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 3, 4, 6]);
    }

    #[test]
    fn zero_threshold_is_exact_match() {
        let idx = paper_table_s();
        let q: BinaryCode = "101110110".parse().unwrap();
        assert_eq!(idx.search(&q, 0), vec![4]);
        let missing: BinaryCode = "000000000".parse().unwrap();
        assert!(idx.search(&missing, 0).is_empty());
    }

    #[test]
    fn max_threshold_returns_everything() {
        let idx = paper_table_s();
        let q: BinaryCode = "000000000".parse().unwrap();
        assert_eq!(idx.search(&q, 9).len(), 8);
    }

    #[test]
    fn insert_delete_roundtrip() {
        let mut idx = paper_table_s();
        let code: BinaryCode = "001001010".parse().unwrap();
        assert!(idx.delete(&code, 0));
        assert!(!idx.delete(&code, 0), "already deleted");
        assert_eq!(idx.len(), 7);
        assert!(idx.search(&code, 0).is_empty());
        idx.insert(code.clone(), 0);
        assert_eq!(idx.search(&code, 0), vec![0]);
    }

    #[test]
    fn duplicate_codes_keep_distinct_ids() {
        let code: BinaryCode = "1100".parse().unwrap();
        let idx = LinearScanIndex::build([(code.clone(), 7), (code.clone(), 9)]);
        let mut hits = idx.search(&code, 0);
        hits.sort_unstable();
        assert_eq!(hits, vec![7, 9]);
    }

    #[test]
    fn memory_report_counts_rows() {
        let idx = paper_table_s();
        assert!(idx.memory_bytes() >= 8 * std::mem::size_of::<(BinaryCode, TupleId)>());
        assert_eq!(idx.memory_report().structure_bytes, 0);
    }
}
