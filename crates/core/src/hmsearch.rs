//! HmSearch-style signature index (§2; Zhang et al. — SSDBM 2013).
//!
//! Like HEngine, HmSearch uses the relaxed pigeonhole (some segment within
//! distance 1), but it moves the 1-bit enumeration to the **data side**:
//! every stored code contributes, per segment, its value *and all one-bit
//! variants* as signatures. A query then needs only one exact-match lookup
//! per table — no query expansion — at the price of an index that is
//! `(segment_width + 1)×` larger per table. This is precisely the paper's
//! criticism: "The size of the index increases dramatically, because
//! HmSearch need to generate large amount of unique signatures", which the
//! memory column of our Table 4 run reproduces.

use std::collections::HashMap;

use ha_bitcode::segment::Segmentation;
use ha_bitcode::BinaryCode;

use crate::memory::{map_bytes, vec_bytes, MemoryReport};
use crate::{HammingIndex, MutableIndex, TupleId};

/// HmSearch index with `r` segment tables (guaranteed threshold `2r - 1`).
#[derive(Clone, Debug)]
pub struct HmSearch {
    code_len: usize,
    seg: Segmentation,
    /// `tables[i]`: signature → rows whose segment i is within distance 1
    /// of the signature.
    tables: Vec<HashMap<u64, Vec<u32>>>,
    rows: Vec<(BinaryCode, TupleId)>,
    tombstones: usize,
}

impl HmSearch {
    /// Empty index with `r` segments over `code_len`-bit codes. `r` is
    /// raised if needed so every segment fits a machine word (extra
    /// segments only strengthen the pigeonhole guarantee).
    pub fn new(code_len: usize, r: usize) -> Self {
        let r = r.max(code_len.div_ceil(64));
        let seg = Segmentation::new(code_len, r);
        HmSearch {
            code_len,
            tables: (0..seg.count()).map(|_| HashMap::new()).collect(),
            seg,
            rows: Vec::new(),
            tombstones: 0,
        }
    }

    /// Empty index sized for threshold `h`.
    pub fn for_threshold(code_len: usize, h: u32) -> Self {
        let r = ((h as usize + 1).div_ceil(2)).max(1);
        Self::new(code_len, r.min(code_len))
    }

    /// Builds from `(code, id)` pairs with `r` segments.
    pub fn build(items: impl IntoIterator<Item = (BinaryCode, TupleId)>, r: usize) -> Self {
        let mut iter = items.into_iter().peekable();
        let code_len = iter
            .peek()
            .map(|(c, _)| c.len())
            .expect("HmSearch::build needs at least one item");
        let mut idx = Self::new(code_len, r);
        for (code, id) in iter {
            idx.insert(code, id);
        }
        idx
    }

    /// Number of segment tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Total signature entries across all tables (the blow-up factor).
    pub fn signature_count(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Itemized memory usage.
    pub fn memory_report(&self) -> MemoryReport {
        let tables: usize = self
            .tables
            .iter()
            .map(|t| map_bytes(t) + t.values().map(vec_bytes).sum::<usize>())
            .sum();
        let code_heap: usize = self.rows.iter().map(|(c, _)| c.heap_bytes()).sum();
        MemoryReport {
            structure_bytes: tables,
            code_bytes: vec_bytes(&self.rows) + code_heap,
            payload_bytes: 0,
        }
    }
}

impl HammingIndex for HmSearch {
    fn name(&self) -> &'static str {
        "HmSearch"
    }

    fn len(&self) -> usize {
        self.rows.len() - self.tombstones
    }

    fn code_len(&self) -> usize {
        self.code_len
    }

    fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        assert_eq!(query.len(), self.code_len, "query length mismatch");
        let mut seen = vec![false; self.rows.len()];
        let mut out = Vec::new();
        for (i, table) in self.tables.iter().enumerate() {
            // One exact lookup per table: the data side already enumerated
            // the 1-bit neighbourhood.
            let key = self.seg.extract(query, i);
            let Some(bucket) = table.get(&key) else {
                continue;
            };
            for &row in bucket {
                let r = row as usize;
                if seen[r] {
                    continue;
                }
                seen[r] = true;
                let (code, id) = &self.rows[r];
                if *id != TupleId::MAX && code.hamming_within(query, h).is_some() {
                    out.push(*id);
                }
            }
        }
        out
    }

    fn complete_up_to(&self) -> Option<u32> {
        Some(2 * self.tables.len() as u32 - 1)
    }

    fn memory_bytes(&self) -> usize {
        self.memory_report().total()
    }
}

impl MutableIndex for HmSearch {
    fn insert(&mut self, code: BinaryCode, id: TupleId) {
        assert_eq!(code.len(), self.code_len, "code length mismatch");
        let row = self.rows.len() as u32;
        for i in 0..self.tables.len() {
            let (_, width) = self.seg.bounds(i);
            let value = self.seg.extract(&code, i);
            for sig in Segmentation::one_bit_variants(value, width) {
                self.tables[i].entry(sig).or_default().push(row);
            }
        }
        self.rows.push((code, id));
    }

    fn delete(&mut self, code: &BinaryCode, id: TupleId) -> bool {
        let key = self.seg.extract(code, 0);
        let Some(&row) = self.tables[0].get(&key).and_then(|b| {
            b.iter().find(|&&r| {
                self.rows[r as usize].1 == id && &self.rows[r as usize].0 == code
            })
        }) else {
            return false;
        };
        for i in 0..self.tables.len() {
            let (_, width) = self.seg.bounds(i);
            let value = self.seg.extract(code, i);
            for sig in Segmentation::one_bit_variants(value, width) {
                if let Some(b) = self.tables[i].get_mut(&sig) {
                    if let Some(pos) = b.iter().position(|&r| r == row) {
                        b.swap_remove(pos);
                    }
                    if b.is_empty() {
                        self.tables[i].remove(&sig);
                    }
                }
            }
        }
        self.rows[row as usize].1 = TupleId::MAX;
        self.tombstones += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_matches_oracle, paper_table_s, random_dataset};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_example_select() {
        let data = paper_table_s();
        let idx = HmSearch::build(data.clone(), 2); // guarantee h ≤ 3
        let q: BinaryCode = "101100010".parse().unwrap();
        assert_matches_oracle(idx.search(&q, 3), &data, &q, 3, "hmsearch");
    }

    #[test]
    fn complete_within_guarantee() {
        let data = random_dataset(300, 32, 25);
        let idx = HmSearch::build(data.clone(), 2);
        let mut rng = StdRng::seed_from_u64(12);
        for h in 0..=3 {
            let q = BinaryCode::random(32, &mut rng);
            assert_matches_oracle(idx.search(&q, h), &data, &q, h, "hmsearch");
        }
    }

    #[test]
    fn signature_blowup_matches_formula() {
        // r tables × (width + 1) signatures per row.
        let data = random_dataset(50, 32, 26);
        let idx = HmSearch::build(data, 2);
        assert_eq!(idx.signature_count(), 50 * 2 * (16 + 1));
    }

    #[test]
    fn costs_more_memory_than_hengine() {
        let data = random_dataset(500, 64, 27);
        let hm = HmSearch::build(data.clone(), 2).memory_bytes();
        let he = crate::HEngine::build(data, 2).memory_bytes();
        assert!(hm > 2 * he, "HmSearch {hm}B should dwarf HEngine {he}B");
    }

    #[test]
    fn insert_delete_roundtrip() {
        let data = random_dataset(120, 32, 28);
        let mut idx = HmSearch::build(data.clone(), 2);
        let (code, id) = data[60].clone();
        assert!(idx.delete(&code, id));
        assert!(!idx.delete(&code, id));
        assert!(!idx.search(&code, 0).contains(&id));
        idx.insert(code.clone(), id);
        assert!(idx.search(&code, 0).contains(&id));
        let mut rng = StdRng::seed_from_u64(7);
        let q = BinaryCode::random(32, &mut rng);
        assert_matches_oracle(idx.search(&q, 3), &data, &q, 3, "hmsearch-after-update");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_hmsearch_complete_within_guarantee(seed in any::<u64>(), h in 0u32..4) {
            let data = random_dataset(100, 28, seed);
            let idx = HmSearch::build(data.clone(), 2);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xCAFE);
            let q = BinaryCode::random(28, &mut rng);
            assert_matches_oracle(idx.search(&q, h), &data, &q, h, "hmsearch-prop");
        }
    }
}
