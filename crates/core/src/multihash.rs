//! Manku et al.'s multi-hash-table method (§2, the MH-4 / MH-10 rows of
//! Table 4).
//!
//! Pigeonhole filter: if `hamming(a, b) <= h` and the code is split into
//! `T >= h + 1` segments, at least one segment of `a` equals the matching
//! segment of `b` exactly. The method therefore keeps `T` hash tables, the
//! i-th keyed by segment `i`; a query probes each table with its own
//! segment value and verifies every bucketed candidate with a full distance
//! computation.
//!
//! The costs the paper criticises are both visible in this implementation:
//! the dataset's id list is replicated `T` times (memory column of
//! Table 4), and bucket verification is a linear scan that grows with skew
//! and with `h` (query-time column, Figure 6).

use std::collections::HashMap;

use ha_bitcode::segment::Segmentation;
use ha_bitcode::BinaryCode;

use crate::memory::{map_bytes, vec_bytes, MemoryReport};
use crate::{HammingIndex, MutableIndex, TupleId};

/// Multi-hash-table index with `T` tables (`T - 1` = guaranteed threshold).
///
/// Faithful to Manku's design, **each table stores its own copy of the
/// code** ("this algorithm needs to replicate the database multiple
/// times") — that replication is what the Table 4 memory comparison, and
/// the paper's criticism, are about.
#[derive(Clone, Debug)]
pub struct MultiHashTable {
    code_len: usize,
    seg: Segmentation,
    /// `tables[i]`: segment-i value → (replicated code, row index) pairs.
    tables: Vec<HashMap<u64, Vec<(BinaryCode, u32)>>>,
    rows: Vec<(BinaryCode, TupleId)>,
    /// Rows removed by `delete` (lazy tombstones; compacted on rebuild).
    tombstones: usize,
}

impl MultiHashTable {
    /// Empty index over `code_len`-bit codes with `num_tables` tables.
    ///
    /// `num_tables` is raised if needed so every segment fits a machine
    /// word (extra tables only strengthen the pigeonhole guarantee).
    ///
    /// # Panics
    /// If `num_tables` is 0 or exceeds `code_len`.
    pub fn new(code_len: usize, num_tables: usize) -> Self {
        let num_tables = num_tables.max(code_len.div_ceil(64));
        let seg = Segmentation::new(code_len, num_tables);
        MultiHashTable {
            code_len,
            tables: (0..seg.count()).map(|_| HashMap::new()).collect(),
            seg,
            rows: Vec::new(),
            tombstones: 0,
        }
    }

    /// Builds from `(code, id)` pairs.
    pub fn build(
        items: impl IntoIterator<Item = (BinaryCode, TupleId)>,
        num_tables: usize,
    ) -> Self {
        let mut iter = items.into_iter().peekable();
        let code_len = iter
            .peek()
            .map(|(c, _)| c.len())
            .expect("MultiHashTable::build needs at least one item");
        let mut idx = Self::new(code_len, num_tables);
        for (code, id) in iter {
            idx.insert(code, id);
        }
        idx
    }

    /// Number of hash tables `T`.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Itemized memory usage — note the `T`-fold replication of row
    /// references in `structure_bytes`.
    pub fn memory_report(&self) -> MemoryReport {
        let tables: usize = self
            .tables
            .iter()
            .map(|t| {
                map_bytes(t)
                    + t.values()
                        .map(|b| vec_bytes(b) + b.iter().map(|(c, _)| c.heap_bytes()).sum::<usize>())
                        .sum::<usize>()
            })
            .sum();
        let code_heap: usize = self.rows.iter().map(|(c, _)| c.heap_bytes()).sum();
        MemoryReport {
            structure_bytes: tables,
            code_bytes: vec_bytes(&self.rows) + code_heap,
            payload_bytes: 0,
        }
    }
}

impl HammingIndex for MultiHashTable {
    fn name(&self) -> &'static str {
        "MultiHashTable"
    }

    fn len(&self) -> usize {
        self.rows.len() - self.tombstones
    }

    fn code_len(&self) -> usize {
        self.code_len
    }

    fn search(&self, query: &BinaryCode, h: u32) -> Vec<TupleId> {
        assert_eq!(query.len(), self.code_len, "query length mismatch");
        // Visited bitmap de-duplicates candidates surfacing in several
        // tables.
        let mut seen = vec![false; self.rows.len()];
        let mut out = Vec::new();
        for (i, table) in self.tables.iter().enumerate() {
            let key = self.seg.extract(query, i);
            let Some(bucket) = table.get(&key) else {
                continue;
            };
            for (code, row) in bucket {
                let r = *row as usize;
                if seen[r] {
                    continue;
                }
                seen[r] = true;
                // Verify against the table-local replica (the linear
                // within-bucket scan Manku's method pays).
                if code.hamming_within(query, h).is_some() {
                    out.push(self.rows[r].1);
                }
            }
        }
        out
    }

    fn complete_up_to(&self) -> Option<u32> {
        Some(self.tables.len() as u32 - 1)
    }

    fn memory_bytes(&self) -> usize {
        self.memory_report().total()
    }
}

impl MutableIndex for MultiHashTable {
    fn insert(&mut self, code: BinaryCode, id: TupleId) {
        assert_eq!(code.len(), self.code_len, "code length mismatch");
        let row = self.rows.len() as u32;
        for (i, table) in self.tables.iter_mut().enumerate() {
            let key = self.seg.extract(&code, i);
            table.entry(key).or_default().push((code.clone(), row));
        }
        self.rows.push((code, id));
    }

    fn delete(&mut self, code: &BinaryCode, id: TupleId) -> bool {
        // Find the live row via table 0's bucket (cheaper than a scan).
        let key = self.seg.extract(code, 0);
        let Some(bucket) = self.tables[0].get(&key) else {
            return false;
        };
        let Some(row) = bucket
            .iter()
            .map(|&(_, r)| r)
            .find(|&r| self.rows[r as usize].1 == id && &self.rows[r as usize].0 == code)
        else {
            return false;
        };
        // Unlink from every table's bucket.
        for (i, table) in self.tables.iter_mut().enumerate() {
            let key = self.seg.extract(code, i);
            if let Some(b) = table.get_mut(&key) {
                if let Some(pos) = b.iter().position(|&(_, r)| r == row) {
                    b.swap_remove(pos);
                }
                if b.is_empty() {
                    table.remove(&key);
                }
            }
        }
        // Tombstone the row (keeps row indices stable for other buckets).
        self.rows[row as usize].1 = TupleId::MAX;
        self.tombstones += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{assert_matches_oracle, paper_table_s, random_dataset};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_example_select_mh4() {
        let data = paper_table_s();
        // 9-bit codes, 4 tables → guaranteed complete up to h = 3.
        let idx = MultiHashTable::build(data.clone(), 4);
        assert_eq!(idx.complete_up_to(), Some(3));
        let q: BinaryCode = "101100010".parse().unwrap();
        assert_matches_oracle(idx.search(&q, 3), &data, &q, 3, "mh4");
    }

    #[test]
    fn complete_within_guarantee_random_data() {
        let data = random_dataset(400, 32, 5);
        for t in [4, 6, 10] {
            let idx = MultiHashTable::build(data.clone(), t);
            let mut rng = StdRng::seed_from_u64(t as u64);
            for h in 0..t as u32 {
                let q = BinaryCode::random(32, &mut rng);
                assert_matches_oracle(idx.search(&q, h), &data, &q, h, "mh");
            }
        }
    }

    #[test]
    fn beyond_guarantee_is_subset_of_oracle() {
        let data = random_dataset(400, 32, 6);
        let idx = MultiHashTable::build(data.clone(), 4);
        let mut rng = StdRng::seed_from_u64(1);
        let q = BinaryCode::random(32, &mut rng);
        let h = 12; // way past the guarantee of 3
        let mut got = idx.search(&q, h);
        got.sort_unstable();
        got.dedup();
        let want = crate::testkit::oracle_select(&data, &q, h);
        // No false positives ever; false negatives allowed past guarantee.
        for id in &got {
            assert!(want.contains(id));
        }
    }

    #[test]
    fn never_returns_duplicates() {
        // A query equal to a stored code appears in all T buckets; the
        // visited bitmap must emit it once.
        let data = random_dataset(100, 24, 8);
        let idx = MultiHashTable::build(data.clone(), 4);
        let q = data[3].0.clone();
        let got = idx.search(&q, 2);
        let mut dedup = got.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(got.len(), dedup.len());
    }

    #[test]
    fn insert_delete_roundtrip() {
        let data = random_dataset(200, 32, 9);
        let mut idx = MultiHashTable::build(data.clone(), 4);
        let (code, id) = data[50].clone();
        assert!(idx.delete(&code, id));
        assert!(!idx.delete(&code, id));
        assert!(!idx.search(&code, 0).contains(&id));
        assert_eq!(idx.len(), 199);
        idx.insert(code.clone(), id);
        assert!(idx.search(&code, 0).contains(&id));
        let mut rng = StdRng::seed_from_u64(2);
        let q = BinaryCode::random(32, &mut rng);
        assert_matches_oracle(idx.search(&q, 3), &data, &q, 3, "mh-after-update");
    }

    #[test]
    fn memory_grows_with_table_count() {
        let data = random_dataset(500, 32, 10);
        let m4 = MultiHashTable::build(data.clone(), 4);
        let m10 = MultiHashTable::build(data, 10);
        assert!(
            m10.memory_bytes() > m4.memory_bytes(),
            "10 tables ({}B) should cost more than 4 ({}B)",
            m10.memory_bytes(),
            m4.memory_bytes()
        );
        // The replication factor is exactly T: every code is copied into
        // each of the T tables (Manku's "replicate the database" cost).
        let entries = |m: &MultiHashTable| -> usize {
            m.tables.iter().map(|t| t.values().map(Vec::len).sum::<usize>()).sum()
        };
        assert_eq!(entries(&m4), 4 * 500);
        assert_eq!(entries(&m10), 10 * 500);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_mh_complete_within_guarantee(seed in any::<u64>(), h in 0u32..4) {
            let data = random_dataset(120, 28, seed);
            let idx = MultiHashTable::build(data.clone(), 4);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
            let q = BinaryCode::random(28, &mut rng);
            assert_matches_oracle(idx.search(&q, h), &data, &q, h, "mh-prop");
        }
    }
}
