//! `hamming-cli` — ad-hoc Hamming similarity queries over code files.
//!
//! Codes are text files with one binary string per line (`#` comments and
//! blank lines ignored); ids are the 0-based line numbers of the codes.
//!
//! ```text
//! hamming-cli select <file> <query-code> <h>     # Hamming-select
//! hamming-cli join <file-r> <file-s> <h>         # Hamming-join (pairs)
//! hamming-cli knn <file> <query-code> <k>        # k nearest codes
//! hamming-cli stats <file>                       # index statistics
//! ```

use std::process::ExitCode;

use hamming_suite::bitcode::BinaryCode;
use hamming_suite::index::select::{hamming_join, hamming_select};
use hamming_suite::index::{DynamicHaIndex, HammingIndex};
use hamming_suite::knn::{knn_select, KnnParams};

const USAGE: &str = "usage:
  hamming-cli select <file> <query-code> <h>   ids within Hamming distance h
  hamming-cli join   <file-r> <file-s> <h>     all (r,s) id pairs within h
  hamming-cli knn    <file> <query-code> <k>   k nearest codes to the query
  hamming-cli stats  <file>                    HA-Index statistics

Code files contain one 0/1 string per line; '#' starts a comment.
Ids are 0-based line numbers of the codes.";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match (cmd, args.len()) {
        ("select", 4) => {
            let data = load_codes(&args[1])?;
            let query = parse_code(&args[2])?;
            let h: u32 = parse_num(&args[3], "h")?;
            let index = DynamicHaIndex::build(data);
            for id in hamming_select(&index, &query, h) {
                println!("{id}");
            }
            Ok(())
        }
        ("join", 4) => {
            let r = load_codes(&args[1])?;
            let s = load_codes(&args[2])?;
            let h: u32 = parse_num(&args[3], "h")?;
            let index = DynamicHaIndex::build(s);
            for (rid, sid) in hamming_join(&index, &r, h) {
                println!("{rid}\t{sid}");
            }
            Ok(())
        }
        ("knn", 4) => {
            let data = load_codes(&args[1])?;
            let query = parse_code(&args[2])?;
            let k: usize = parse_num(&args[3], "k")?;
            let codes = data.clone();
            let index = DynamicHaIndex::build(data);
            let resolve = |id: u64| codes[id as usize].0.clone();
            for (id, dist) in knn_select(&index, resolve, &query, k, KnnParams::default()) {
                println!("{id}\t{dist}");
            }
            Ok(())
        }
        ("stats", 2) => {
            let data = load_codes(&args[1])?;
            let n = data.len();
            let index = DynamicHaIndex::build(data);
            let mem = index.memory_report();
            println!("tuples            : {n}");
            println!("code length       : {} bits", index.code_len());
            println!("distinct codes    : {}", index.leaf_count());
            println!("internal nodes    : {}", index.internal_node_count());
            println!("forest depth      : {}", index.depth());
            println!("memory (structure): {} B", mem.structure_bytes);
            println!("memory (codes)    : {} B", mem.code_bytes);
            println!("memory (payload)  : {} B", mem.payload_bytes);
            println!("wire size (leafy) : {} B", index.serialized_bytes(true));
            println!("wire size (bare)  : {} B", index.serialized_bytes(false));
            Ok(())
        }
        ("-h" | "--help" | "help", _) => {
            println!("{USAGE}");
            Ok(())
        }
        ("", _) => Err("missing command".into()),
        (other, _) => Err(format!("unknown or malformed command: {other}")),
    }
}

fn load_codes(path: &str) -> Result<Vec<(BinaryCode, u64)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    let mut len: Option<usize> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let code: BinaryCode = line
            .parse()
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        if let Some(expected) = len {
            if code.len() != expected {
                return Err(format!(
                    "{path}:{}: code length {} differs from {}",
                    lineno + 1,
                    code.len(),
                    expected
                ));
            }
        } else {
            len = Some(code.len());
        }
        out.push((code, out.len() as u64));
    }
    if out.is_empty() {
        return Err(format!("{path}: no codes found"));
    }
    Ok(out)
}

fn parse_code(s: &str) -> Result<BinaryCode, String> {
    s.parse().map_err(|e| format!("bad query code: {e}"))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: {s:?}"))
}
