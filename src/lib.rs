//! # hamming-suite
//!
//! One-stop facade for the HA-Index reproduction of *"Efficient Processing
//! of Hamming-Distance-Based Similarity-Search Queries Over MapReduce"*
//! (Tang, Yu, Aref, Malluhi, Ouzzani — EDBT 2015).
//!
//! The workspace is layered bottom-up; this crate re-exports each layer
//! under a stable module name so applications depend on one crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`bitcode`] | `ha-bitcode` | binary codes, Gray order, masked patterns |
//! | [`hashing`] | `ha-hashing` | learned similarity hash functions |
//! | [`index`] | `ha-core` | HA-Index (static/dynamic) + all baselines |
//! | [`store`] | `ha-store` | HA-Store: mmap-able persistent snapshots, zero-copy cold starts |
//! | [`knn`] | `ha-knn` | approximate kNN-select/join, LSH & LSB-Tree |
//! | [`mapreduce`] | `ha-mapreduce` | the MapReduce runtime + metrics |
//! | [`datagen`] | `ha-datagen` | dataset profiles, sampling, scale-up |
//! | [`distributed`] | `ha-distributed` | MR Hamming-join, PMH & PGBJ |
//! | [`service`] | `ha-service` | HA-Serve: online sharded query serving |
//! | [`obs`] | `ha-obs` | HA-Trace: spans, events, metrics, sinks |
//!
//! ## Quickstart
//!
//! ```
//! use hamming_suite::bitcode::BinaryCode;
//! use hamming_suite::index::{DynamicHaIndex, HammingIndex};
//!
//! // Index the running example of the paper (Table 2a)…
//! let codes: Vec<BinaryCode> = [
//!     "001001010", "001011101", "011001100", "101001010",
//!     "101110110", "101011101", "101101010", "111001100",
//! ].iter().map(|s| s.parse().unwrap()).collect();
//! let index = DynamicHaIndex::build(codes.iter().cloned().enumerate()
//!     .map(|(i, c)| (c, i as u64)));
//!
//! // …and run the paper's Hamming-select: query 101100010 with h = 3.
//! let query: BinaryCode = "101100010".parse().unwrap();
//! let mut hits = index.search(&query, 3);
//! hits.sort_unstable();
//! assert_eq!(hits, vec![0, 3, 4, 6]); // t0, t3, t4, t6
//! ```

pub use ha_bitcode as bitcode;
pub use ha_core as index;
pub use ha_datagen as datagen;
pub use ha_distributed as distributed;
pub use ha_hashing as hashing;
pub use ha_knn as knn;
pub use ha_mapreduce as mapreduce;
pub use ha_obs as obs;
pub use ha_service as service;
pub use ha_store as store;

// Compile-check the `rust` code blocks of the README and the docs/
// pages as doctests, so the documentation can't drift from the API it
// shows. (Blocks not meant to compile are fenced `text`/`bash`/
// `console`; rustdoc only builds `rust`/unannotated fences.)
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

#[cfg(doctest)]
#[doc = include_str!("../docs/ARCHITECTURE.md")]
pub struct ArchitectureDoctests;

#[cfg(doctest)]
#[doc = include_str!("../docs/OBSERVABILITY.md")]
pub struct ObservabilityDoctests;

#[cfg(doctest)]
#[doc = include_str!("../docs/KERNELS.md")]
pub struct KernelsDoctests;
